package core

import (
	"errors"
	"fmt"
	"sort"

	"mobweb/internal/erasure"
	"mobweb/internal/fountain"
	"mobweb/internal/obs"
	"mobweb/internal/packet"
)

// Receiver accumulates intact cooked packets for one transmission layout
// and answers the client-side questions of §4.2: how much information
// content has arrived, is the document reconstructible, and what can be
// rendered already. It needs only the Layout — the serializable geometry
// a server sends ahead of the packet stream — because the dispersal
// matrices are pure functions of each generation's (M, N).
//
// A Receiver that persists across retransmission rounds realizes the
// paper's Caching strategy ("cache the intact cooked packets received and
// use them to reconstruct the document when a retransmission occurs");
// calling Reset between rounds realizes NoCaching.
//
// Receiver is not safe for concurrent use; the transport layer owns it
// from a single goroutine.
type Receiver struct {
	layout Layout
	coders []*erasure.Coder
	// fdec holds the per-generation rateless decoders when the layout's
	// codec is fountain; coders is then unused. Packets are tracked in
	// intact under packed (gen, seq) keys so Have lists, persistence and
	// resume stay codec-agnostic.
	fdec   []*fountain.Decoder
	intact map[int][]byte // global cooked seq (or packed fountain seq) → payload
	// perGen counts intact packets per generation for O(1) stall checks.
	perGen []int
	// decoded memoizes each generation's decoded raw packets. Once a
	// generation is reconstructible its decode result is fixed — extra
	// packets can only re-derive the same raw bytes — so the memo is
	// never invalidated by Add, only by Reset.
	decoded [][][]byte
	// seeded marks fountain generations installed wholesale from a
	// persistent store (SeedDecodedGeneration): their raw symbols are in
	// decoded but no wire packets back them, so reconstructibility is
	// answered here rather than by the decoder. Nil until first used.
	seeded []bool
	// trace, when attached via SetTrace, records decode events into the
	// owning fetch's timeline.
	trace *obs.Trace
}

// NewReceiver returns an empty receiver for the plan's layout.
func NewReceiver(plan *Plan) (*Receiver, error) {
	if plan == nil {
		return nil, fmt.Errorf("core: nil plan")
	}
	return NewReceiverFromLayout(plan.Layout())
}

// NewReceiverFromLayout builds a receiver from transmission geometry
// alone, the client side of the live transport.
func NewReceiverFromLayout(layout Layout) (*Receiver, error) {
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	r := &Receiver{
		layout:  layout,
		intact:  make(map[int][]byte),
		perGen:  make([]int, len(layout.Shapes)),
		decoded: make([][][]byte, len(layout.Shapes)),
	}
	if layout.Codec == erasure.CodecFountain {
		r.fdec = make([]*fountain.Decoder, len(layout.Shapes))
		for i, s := range layout.Shapes {
			weights, err := layout.FountainWeights(i)
			if err != nil {
				return nil, err
			}
			dec, err := fountain.NewDecoder(i, layout.Seed, s.M, layout.PacketSize, weights)
			if err != nil {
				return nil, fmt.Errorf("generation %d: %w", i, err)
			}
			r.fdec[i] = dec
		}
		return r, nil
	}
	r.coders = make([]*erasure.Coder, len(layout.Shapes))
	for i, s := range layout.Shapes {
		coder, err := erasure.Shared(s.M, s.N)
		if err != nil {
			return nil, fmt.Errorf("generation %d: %w", i, err)
		}
		r.coders[i] = coder
	}
	return r, nil
}

// Layout returns the receiver's transmission geometry.
func (r *Receiver) Layout() Layout { return r.layout }

// Add records an intact cooked packet by global sequence number — a
// packed (gen, seq) pair under the fountain codec. Duplicates are
// ignored. The payload is copied.
func (r *Receiver) Add(seq int, payload []byte) error {
	if len(payload) != r.layout.PacketSize {
		return fmt.Errorf("core: payload %d bytes, want %d", len(payload), r.layout.PacketSize)
	}
	if r.fdec != nil {
		return r.addFountain(seq, payload)
	}
	if seq < 0 || seq >= r.layout.N() {
		return fmt.Errorf("core: seq %d outside [0, %d)", seq, r.layout.N())
	}
	if _, dup := r.intact[seq]; dup {
		return nil
	}
	g, _, _, err := r.layout.genBounds(seq)
	if err != nil {
		return err
	}
	r.intact[seq] = append([]byte(nil), payload...)
	r.perGen[g]++
	return nil
}

// addFountain records a rateless packet under its packed seq and feeds
// the generation's decoder, which recovers source symbols incrementally
// (peeling) and finishes stalled patterns via the Gaussian fallback.
func (r *Receiver) addFountain(packed int, payload []byte) error {
	if packed < 0 {
		return fmt.Errorf("core: packed fountain seq %d negative", packed)
	}
	g, seq := packet.UnpackSeq(packed)
	if g >= len(r.fdec) {
		return fmt.Errorf("core: fountain generation %d of %d", g, len(r.fdec))
	}
	if _, dup := r.intact[packed]; dup {
		return nil
	}
	own := append([]byte(nil), payload...)
	r.intact[packed] = own
	r.perGen[g]++
	wasDone := r.fdec[g].Complete()
	if _, err := r.fdec[g].Add(seq, own); err != nil {
		return err
	}
	if !wasDone && r.fdec[g].Complete() {
		r.trace.Record(obs.Event{Type: obs.EventDecode, Gen: g})
	}
	return nil
}

// AddFrame parses a wire frame in the layout's codec, verifies its CRC,
// and records it when intact. It returns the (packed, for fountain)
// sequence number and whether the packet was intact. Truncated frames
// return an error. The frame buffer may be reused by the caller: Parse
// only borrows it, and Add copies the payload.
func (r *Receiver) AddFrame(frame []byte) (seq int, intact bool, err error) {
	if r.fdec != nil {
		return r.addFountainFrame(frame)
	}
	p, err := packet.Parse(frame)
	if errors.Is(err, packet.ErrCorrupt) {
		return p.Seq, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	if err := r.Add(p.Seq, p.Payload); err != nil {
		return p.Seq, false, err
	}
	return p.Seq, true, nil
}

// addFountainFrame parses a fountain frame. A frame carrying a seed
// other than the layout's belongs to a different stream — it cannot be
// decoded under this receiver's spec — and is reported as an error
// rather than silently dropped, since it means sender and receiver
// disagree about the fetch.
func (r *Receiver) addFountainFrame(frame []byte) (seq int, intact bool, err error) {
	p, err := packet.ParseFountain(frame)
	packed := packet.PackSeq(p.Gen, p.Seq)
	if errors.Is(err, packet.ErrCorrupt) {
		return packed, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	if p.Seed != r.layout.Seed {
		return packed, false, fmt.Errorf("core: fountain seed %#x, layout has %#x", p.Seed, r.layout.Seed)
	}
	if err := r.Add(packed, p.Payload); err != nil {
		return packed, false, err
	}
	return packed, true, nil
}

// IntactCount returns the number of distinct intact packets held.
func (r *Receiver) IntactCount() int { return len(r.intact) }

// Held reports whether the packet with the given sequence number is held
// intact; the transport uses it to request selective retransmission.
func (r *Receiver) Held(seq int) bool {
	_, ok := r.intact[seq]
	return ok
}

// Rebase returns a new receiver for newLayout carrying over every held
// packet that exists under both geometries, supporting adaptive-γ
// transports (§4.4): a plan rebuilt with a different redundancy ratio
// keeps the same body, packet size and generation split, and the
// systematic Vandermonde dispersal row j depends only on (M, j) — row j
// of V·inv(V[0..M]) never reads past the top M×M block — so cooked
// packet j is byte-identical under both plans. Rebase therefore refuses
// geometries that differ in anything besides per-generation N (those
// mean the document itself changed, voiding the cache); held packets
// whose local cooked index exceeds the new generation's N are dropped.
func (r *Receiver) Rebase(newLayout Layout) (*Receiver, error) {
	old := r.layout
	if old.PacketSize != newLayout.PacketSize || old.BodySize != newLayout.BodySize ||
		len(old.Shapes) != len(newLayout.Shapes) {
		return nil, fmt.Errorf("core: rebase geometry mismatch: %d×%dB/%d gens vs %d×%dB/%d gens",
			old.PacketSize, old.BodySize, len(old.Shapes),
			newLayout.PacketSize, newLayout.BodySize, len(newLayout.Shapes))
	}
	if old.Codec != newLayout.Codec {
		// Cooked payloads are codec-specific; nothing held under one
		// codec is a valid packet of the other. The transport starts a
		// fresh receiver instead.
		return nil, fmt.Errorf("core: rebase codec mismatch: %s vs %s", old.Codec, newLayout.Codec)
	}
	for g := range old.Shapes {
		if old.Shapes[g].M != newLayout.Shapes[g].M {
			return nil, fmt.Errorf("core: rebase generation %d raw count %d != %d",
				g, old.Shapes[g].M, newLayout.Shapes[g].M)
		}
	}
	if old.Codec == erasure.CodecFountain {
		if old.Seed != newLayout.Seed {
			// A different seed is a different stream: held combinations
			// would decode under the wrong spec.
			return nil, fmt.Errorf("core: rebase fountain seed %#x != %#x", old.Seed, newLayout.Seed)
		}
		nr, err := NewReceiverFromLayout(newLayout)
		if err != nil {
			return nil, err
		}
		nr.trace = r.trace
		for packed, payload := range r.intact {
			if err := nr.Add(packed, payload); err != nil {
				return nil, err
			}
		}
		return nr, nil
	}
	nr, err := NewReceiverFromLayout(newLayout)
	if err != nil {
		return nil, err
	}
	nr.trace = r.trace // the rebased receiver keeps feeding the same fetch timeline
	newCookedOff := make([]int, len(newLayout.Shapes))
	off := 0
	for g, s := range newLayout.Shapes {
		newCookedOff[g] = off
		off += s.N
	}
	for seq, payload := range r.intact {
		g, _, cookedOff, err := old.genBounds(seq)
		if err != nil {
			return nil, err
		}
		local := seq - cookedOff
		if local >= newLayout.Shapes[g].N {
			continue
		}
		if err := nr.Add(newCookedOff[g]+local, payload); err != nil {
			return nil, err
		}
	}
	return nr, nil
}

// Reset discards all cached packets — the NoCaching behaviour between
// retransmission rounds (stock HTTP reload).
func (r *Receiver) Reset() {
	r.intact = make(map[int][]byte)
	for i := range r.perGen {
		r.perGen[i] = 0
	}
	for i := range r.decoded {
		r.decoded[i] = nil
	}
	for i := range r.seeded {
		r.seeded[i] = false
	}
	for i := range r.fdec {
		// Decoders accumulate state monotonically; a reset means a fresh
		// decoder. Geometry was validated at construction, so rebuilding
		// cannot fail.
		weights, _ := r.layout.FountainWeights(i)
		dec, err := fountain.NewDecoder(i, r.layout.Seed, r.layout.Shapes[i].M, r.layout.PacketSize, weights)
		if err != nil {
			panic(fmt.Sprintf("core: reset rebuilt invalid decoder: %v", err))
		}
		r.fdec[i] = dec
	}
}

// decodeGeneration returns generation g's raw packets, decoding on first
// use and serving the memo afterwards. Callers must have checked
// reconstructibility; the memo is sound because a reconstructible
// generation always decodes to the same raw bytes no matter which packet
// subset the codec picks.
func (r *Receiver) decodeGeneration(g int) ([][]byte, error) {
	if r.decoded[g] != nil {
		coreMetrics.memoHits.Inc()
		r.trace.Record(obs.Event{Type: obs.EventDecodeMemo, Gen: g})
		return r.decoded[g], nil
	}
	if r.fdec != nil {
		// The fountain decoder decoded incrementally as packets arrived;
		// completion was checked by the caller, so collect the symbols.
		raw := make([][]byte, r.layout.Shapes[g].M)
		for i := range raw {
			if raw[i] = r.fdec[g].Symbol(i); raw[i] == nil {
				return nil, fmt.Errorf("core: generation %d symbol %d unrecovered", g, i)
			}
		}
		r.decoded[g] = raw
		return raw, nil
	}
	raw, err := r.coders[g].Decode(r.generationIntact(g))
	if err != nil {
		return nil, err
	}
	coreMetrics.decodes.Inc()
	r.trace.Record(obs.Event{Type: obs.EventDecode, Gen: g})
	r.decoded[g] = raw
	return raw, nil
}

// GenerationReconstructible reports whether dispersal group g can be
// decoded: at least M_g intact packets for the fixed-rate code, or a
// completed rateless decoder (packet count alone does not suffice —
// random combinations can be linearly dependent).
func (r *Receiver) GenerationReconstructible(g int) bool {
	if g < 0 || g >= len(r.perGen) {
		return false
	}
	if r.fdec != nil {
		return r.seededGen(g) || r.fdec[g].Complete()
	}
	return r.perGen[g] >= r.layout.Shapes[g].M
}

// Reconstructible reports whether every generation can be decoded — the
// first termination condition of §4.2.
func (r *Receiver) Reconstructible() bool {
	for g := range r.perGen {
		if !r.GenerationReconstructible(g) {
			return false
		}
	}
	return true
}

// generationIntact returns the intact packets belonging to generation g
// as local-index erasure.Received values.
func (r *Receiver) generationIntact(g int) []erasure.Received {
	_, _, cookedOff := r.genOffsets(g)
	shape := r.layout.Shapes[g]
	out := make([]erasure.Received, 0, shape.M)
	for seq, payload := range r.intact {
		if seq >= cookedOff && seq < cookedOff+shape.N {
			out = append(out, erasure.Received{Index: seq - cookedOff, Data: payload})
		}
	}
	// Map iteration order must not leak into the decode: Decode prefers
	// clear rows but fills the remainder with redundant rows in input
	// order, so an unsorted set varies the chosen row set — and with it
	// the inversion-cache key and the work profile — run to run.
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// genOffsets returns (gen, rawOff, cookedOff) cumulative offsets for
// generation g.
func (r *Receiver) genOffsets(g int) (gen, rawOff, cookedOff int) {
	for i := 0; i < g; i++ {
		rawOff += r.layout.Shapes[i].M
		cookedOff += r.layout.Shapes[i].N
	}
	return g, rawOff, cookedOff
}

// Reconstruct decodes all generations and returns the document body in
// original order. It returns ErrNotReconstructible while packets are
// still missing.
func (r *Receiver) Reconstruct() ([]byte, error) {
	if !r.Reconstructible() {
		return nil, ErrNotReconstructible
	}
	permuted := make([]byte, 0, r.layout.M()*r.layout.PacketSize)
	for g := range r.layout.Shapes {
		raw, err := r.decodeGeneration(g)
		if err != nil {
			return nil, fmt.Errorf("generation %d: %w", g, err)
		}
		for _, pkt := range raw {
			permuted = append(permuted, pkt...)
		}
	}
	permuted = permuted[:r.layout.BodySize]
	out := make([]byte, r.layout.BodySize)
	for _, seg := range r.layout.Ranked {
		copy(out[seg.OrigOff:seg.OrigOff+seg.Length], permuted[seg.PermutedOff:seg.PermutedOff+seg.Length])
	}
	return out, nil
}

// rawAvailable computes, per raw packet, whether its bytes are usable:
// either the packet arrived in clear text, or its whole generation is
// reconstructible.
func (r *Receiver) rawAvailable() []bool {
	avail := make([]bool, r.layout.M())
	rawOff := 0
	for g, shape := range r.layout.Shapes {
		switch {
		case r.fdec != nil && r.seededGen(g):
			// Store-seeded fountain generation: every symbol restored.
			for i := 0; i < shape.M; i++ {
				avail[rawOff+i] = true
			}
		case r.fdec != nil:
			// The peeling decoder recovers symbols before completion;
			// each recovered symbol's bytes are usable immediately —
			// this is where UEP pays off, since high-IC symbols peel
			// first.
			for i := 0; i < shape.M; i++ {
				avail[rawOff+i] = r.fdec[g].Recovered(i)
			}
		case r.GenerationReconstructible(g):
			for i := 0; i < shape.M; i++ {
				avail[rawOff+i] = true
			}
		}
		rawOff += shape.M
	}
	for seq := range r.intact {
		if rawIdx := r.layout.clearRawIndex(seq); rawIdx >= 0 {
			avail[rawIdx] = true
		}
	}
	return avail
}

// segAvailable reports whether every raw packet covering the segment is
// available.
func segAvailable(seg SegmentMeta, avail []bool, sp int) bool {
	if seg.Length == 0 {
		return true
	}
	first := seg.PermutedOff / sp
	last := (seg.PermutedOff + seg.Length - 1) / sp
	for pkt := first; pkt <= last; pkt++ {
		if pkt >= len(avail) || !avail[pkt] {
			return false
		}
	}
	return true
}

// InfoContent returns the accrued information content: the score sum of
// all paragraph-level units whose bytes are fully available. Once every
// generation is reconstructible this is 1 (the document is complete).
func (r *Receiver) InfoContent() float64 {
	avail := r.rawAvailable()
	sp := r.layout.PacketSize
	total := 0.0
	for _, seg := range r.layout.Accrual {
		if segAvailable(seg, avail, sp) {
			total += seg.Score
		}
	}
	return total
}

// AvailableUnits returns the paragraph segments whose content is fully
// available, in transmission order — exactly what the rendering manager
// can already display.
func (r *Receiver) AvailableUnits() []SegmentMeta {
	avail := r.rawAvailable()
	sp := r.layout.PacketSize
	var out []SegmentMeta
	for _, seg := range r.layout.Accrual {
		if segAvailable(seg, avail, sp) {
			out = append(out, seg)
		}
	}
	return out
}

// UnitText extracts a segment's text from available packets. It returns
// ok=false when the segment is not yet fully available.
func (r *Receiver) UnitText(seg SegmentMeta) (string, bool) {
	avail := r.rawAvailable()
	sp := r.layout.PacketSize
	if !segAvailable(seg, avail, sp) {
		return "", false
	}
	buf := make([]byte, seg.Length)
	for off := 0; off < seg.Length; {
		pos := seg.PermutedOff + off
		rawIdx := pos / sp
		within := pos % sp
		chunk := sp - within
		if chunk > seg.Length-off {
			chunk = seg.Length - off
		}
		data, ok := r.rawBytes(rawIdx)
		if !ok {
			return "", false
		}
		copy(buf[off:off+chunk], data[within:within+chunk])
		off += chunk
	}
	return string(buf), true
}

// rawBytes returns raw packet rawIdx's bytes from clear text or a decoded
// generation — or, under the fountain codec, from the generation
// decoder's incrementally recovered symbols.
func (r *Receiver) rawBytes(rawIdx int) ([]byte, bool) {
	rawOff, cookedOff := 0, 0
	for g, shape := range r.layout.Shapes {
		if rawIdx >= rawOff+shape.M {
			rawOff += shape.M
			cookedOff += shape.N
			continue
		}
		if r.fdec != nil {
			if r.seededGen(g) {
				return r.decoded[g][rawIdx-rawOff], true
			}
			if sym := r.fdec[g].Symbol(rawIdx - rawOff); sym != nil {
				return sym, true
			}
			return nil, false
		}
		seq := cookedOff + (rawIdx - rawOff)
		if payload, ok := r.intact[seq]; ok {
			return payload, true
		}
		if !r.GenerationReconstructible(g) {
			return nil, false
		}
		raw, err := r.decodeGeneration(g)
		if err != nil {
			return nil, false
		}
		return raw[rawIdx-rawOff], true
	}
	return nil, false
}

// RenderedUnit pairs an available unit with its text, for progressive
// rendering by a client ("the client renders each organizational unit
// incrementally at the proper position in the browsing window", §3.3).
type RenderedUnit struct {
	// Segment is the unit's layout segment.
	Segment SegmentMeta
	// Text is the unit's body text.
	Text string
}

// Render returns every fully-available unit with its text, in
// transmission order.
func (r *Receiver) Render() []RenderedUnit {
	var out []RenderedUnit
	for _, seg := range r.AvailableUnits() {
		text, ok := r.UnitText(seg)
		if !ok {
			continue
		}
		out = append(out, RenderedUnit{Segment: seg, Text: text})
	}
	return out
}

// Missing returns the sequence numbers not yet held intact, which a
// client reports when requesting a selective retransmission. Under the
// fountain codec the seq space is unbounded and "missing" is not a
// meaningful set; it returns nil (clients report Have instead).
func (r *Receiver) Missing() []int {
	if r.fdec != nil {
		return nil
	}
	var out []int
	for seq := 0; seq < r.layout.N(); seq++ {
		if _, ok := r.intact[seq]; !ok {
			out = append(out, seq)
		}
	}
	return out
}

// HaveList returns every held sequence number in ascending order — the
// resume/retransmission Have list. It works for both codecs: fixed-rate
// cooked seqs, or packed (gen, seq) fountain pairs.
func (r *Receiver) HaveList() []int {
	out := make([]int, 0, len(r.intact))
	for seq := range r.intact {
		out = append(out, seq)
	}
	sort.Ints(out)
	return out
}

var _ fmt.Stringer = (*Receiver)(nil)

// String summarizes receiver progress for logs.
func (r *Receiver) String() string {
	return fmt.Sprintf("receiver{intact %d/%d, IC %.3f, reconstructible %v}",
		r.IntactCount(), r.layout.N(), r.InfoContent(), r.Reconstructible())
}
