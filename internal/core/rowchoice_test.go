package core

import (
	"testing"
)

// Regression for a defect the nondet analyzer surfaced: generationIntact
// ranged over the intact map, so with more packets on hand than the
// generation needs, WHICH redundant rows fed the decoder depended on map
// iteration order — varying the inversion-cache key and the decode work
// profile run to run. The intact set is now sorted by index before it
// reaches erasure.Decode.
func TestGenerationIntactDeterministicRowChoice(t *testing.T) {
	doc, scores := paperShapedDoc(t)
	plan, err := NewPlanWithScores(doc, scores, Config{MaxGeneration: 16})
	if err != nil {
		t.Fatal(err)
	}
	layout := plan.Layout()
	shape0 := layout.Shapes[0]
	if shape0.N <= shape0.M {
		t.Skipf("generation 0 has no parity (N=%d M=%d); nothing to choose between", shape0.N, shape0.M)
	}

	// Two receivers fed the same full generation-0 packet set (every
	// clear and parity row), but in opposite insertion orders.
	seqs := make([]int, shape0.N)
	for i := range seqs {
		seqs[i] = i
	}
	build := func(order []int) *Receiver {
		rcv, err := NewReceiver(plan)
		if err != nil {
			t.Fatal(err)
		}
		for _, seq := range order {
			payload, err := plan.CookedPayload(seq)
			if err != nil {
				t.Fatal(err)
			}
			if err := rcv.Add(seq, payload); err != nil {
				t.Fatal(err)
			}
		}
		return rcv
	}
	reversed := make([]int, len(seqs))
	for i, s := range seqs {
		reversed[len(seqs)-1-i] = s
	}
	a := build(seqs)
	b := build(reversed)

	rowsOf := func(r *Receiver) []int {
		got := r.generationIntact(0)
		rows := make([]int, len(got))
		for i, rec := range got {
			rows[i] = rec.Index
		}
		return rows
	}
	rowsA, rowsB := rowsOf(a), rowsOf(b)
	if len(rowsA) != len(rowsB) {
		t.Fatalf("intact count differs: %d vs %d", len(rowsA), len(rowsB))
	}
	for i := range rowsA {
		if rowsA[i] != rowsB[i] {
			t.Fatalf("row order differs at %d: %v vs %v", i, rowsA, rowsB)
		}
		if i > 0 && rowsA[i-1] >= rowsA[i] {
			t.Fatalf("generationIntact not ascending: %v", rowsA)
		}
	}
}
