package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mobweb/internal/content"
	"mobweb/internal/document"
	"mobweb/internal/erasure"
	"mobweb/internal/fountain"
	"mobweb/internal/packet"
)

// UnitSegment records where one ranked organizational unit lives in the
// permuted transmission stream.
type UnitSegment struct {
	// Unit is the organizational unit.
	Unit *document.Unit
	// Score is the unit's information content under the plan's notion,
	// normalized so all segments sum to 1 (when any score is positive).
	Score float64
	// PermutedOff is the unit's byte offset in the permuted stream.
	PermutedOff int
	// OrigOff is the unit's byte offset in the original document body.
	OrigOff int
	// Length is the unit's extent length in bytes.
	Length int
}

// generation is one independently-encoded dispersal group. The first M
// cooked packets are byte-identical to the raw packets (systematic
// property), so only the parity tail needs GF(2^8) work — and that work
// is deferred row by row to the first access past M. A client that
// terminates early on relevance judgment (the paper's headline scenario)
// therefore never triggers encoding at all, and a fetch that consumes
// only part of the tail pays for exactly the rows it was sent — the
// granularity the shared cooked-frame cache works at.
type generation struct {
	coder     *erasure.Coder
	rawOff    int      // first raw packet index (global)
	cookedOff int      // first cooked sequence number (global)
	raw       [][]byte // this group's raw packets (clear-text prefix)

	mu          sync.Mutex
	parity      [][]byte // cooked[M:], rows encoded lazily (nil until asked)
	encodedRows int      // parity rows materialized so far
}

// ensureParityRow encodes one redundancy row on first use and memoizes
// it. encodes counts generations with any materialized parity plan-wide,
// for observability (the planner's zero-encode acceptance assertion).
// The GF(2^8) work runs under the generation mutex; concurrent senders
// of one hot row are already deduplicated by the frame cache above, so
// the lock guards only the cold corners (sim, baseline, cache disabled).
func (g *generation) ensureParityRow(row int, encodes *atomic.Int64) ([]byte, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.parity == nil {
		g.parity = make([][]byte, g.coder.N()-g.coder.M())
	}
	if g.parity[row] == nil {
		b, err := g.coder.EncodeParityRow(g.raw, row)
		if err != nil {
			return nil, err
		}
		if g.encodedRows == 0 {
			encodes.Add(1)
		}
		g.encodedRows++
		g.parity[row] = b
	}
	return g.parity[row], nil
}

// Plan is an immutable transmission plan for one document: the ranked
// unit permutation, the packetized permuted stream, and the cooked
// packets of every generation. Plans are safe for concurrent use; parity
// packets are encoded lazily (once, guarded) on first access past each
// generation's clear-text prefix.
type Plan struct {
	doc      *document.Document
	cfg      Config
	segments []UnitSegment // ranked units at cfg.LOD (transmission order)
	accrual  []UnitSegment // paragraph-level segments for IC accounting
	body     []byte        // original document body
	permuted []byte        // ranked concatenation of unit extents
	m        int           // total raw packets
	n        int           // total cooked packets
	gens     []*generation

	// parityEncodes counts generations whose parity has been encoded.
	parityEncodes atomic.Int64

	// fmu guards fenc, the lazily-built per-(generation, seed) fountain
	// encoders. A plan is codec-neutral: the fixed-rate path uses the
	// generations' coders, the rateless path attaches encoders here on
	// first use (see fountain.go).
	fmu  sync.Mutex
	fenc map[fountainEncKey]*fountain.Encoder
}

// NewPlan ranks the document's units by the SC's scores for the query and
// builds the transmission plan.
func NewPlan(sc *content.SC, queryVec map[string]int, cfg Config) (*Plan, error) {
	if sc == nil {
		return nil, fmt.Errorf("core: nil SC")
	}
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	evaluated := sc.Evaluate(queryVec)
	scores := make(map[int]float64, len(sc.Doc().Units()))
	for _, u := range sc.Doc().Units() {
		scores[u.ID] = evaluated.Get(full.Notion, u.ID)
	}
	ranked, err := sc.RankUnits(full.LOD, full.Notion, queryVec)
	if err != nil {
		return nil, err
	}
	units := make([]*document.Unit, len(ranked))
	for i, r := range ranked {
		units[i] = r.Unit
	}
	return newPlan(sc.Doc(), units, scores, full)
}

// NewPlanWithScores builds a plan from explicit per-unit scores (unit ID →
// score), ranking the units at cfg.LOD by descending score. It serves the
// simulator, whose synthetic documents carry modeled information content
// rather than keyword-derived scores.
func NewPlanWithScores(doc *document.Document, scores map[int]float64, cfg Config) (*Plan, error) {
	if doc == nil {
		return nil, fmt.Errorf("core: nil document")
	}
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	units, err := doc.UnitsAt(full.LOD)
	if err != nil {
		return nil, err
	}
	ordered := make([]*document.Unit, len(units))
	copy(ordered, units)
	sort.SliceStable(ordered, func(i, j int) bool {
		return scores[ordered[i].ID] > scores[ordered[j].ID]
	})
	return newPlan(doc, ordered, scores, full)
}

func newPlan(doc *document.Document, ranked []*document.Unit, scores map[int]float64, cfg Config) (*Plan, error) {
	body := doc.Body()
	p := &Plan{doc: doc, cfg: cfg, body: body}

	// Build the permuted stream and the segment map.
	p.permuted = make([]byte, 0, len(body))
	total := 0.0
	for _, u := range ranked {
		total += scores[u.ID]
	}
	for _, u := range ranked {
		score := scores[u.ID]
		if total > 0 {
			score /= total
		}
		p.segments = append(p.segments, UnitSegment{
			Unit:        u,
			Score:       score,
			PermutedOff: len(p.permuted),
			OrigOff:     u.Start,
			Length:      u.Span(),
		})
		p.permuted = append(p.permuted, body[u.Start:u.End]...)
	}
	if len(p.permuted) != len(body) {
		return nil, fmt.Errorf("core: ranked units cover %d of %d body bytes; not a partition", len(p.permuted), len(body))
	}

	// Information content accrues at paragraph granularity regardless of
	// the ranked LOD: §5's model discards a document once the received
	// content passes F even under conventional document-LOD transmission,
	// which requires accounting finer than the transmission units.
	paragraphs := doc.Paragraphs()
	accrualTotal := 0.0
	for _, leaf := range paragraphs {
		accrualTotal += scores[leaf.ID]
	}
	for _, leaf := range paragraphs {
		seg, ok := p.segmentContaining(leaf)
		if !ok {
			return nil, fmt.Errorf("core: paragraph %q outside every ranked unit", leaf.Label)
		}
		score := scores[leaf.ID]
		if accrualTotal > 0 {
			score /= accrualTotal
		} else if len(paragraphs) > 0 {
			// Uniform fallback so a document with no scored keywords
			// still reaches IC = 1 when complete.
			score = 1 / float64(len(paragraphs))
		}
		p.accrual = append(p.accrual, UnitSegment{
			Unit:        leaf,
			Score:       score,
			PermutedOff: seg.PermutedOff + (leaf.Start - seg.Unit.Start),
			OrigOff:     leaf.Start,
			Length:      leaf.Span(),
		})
	}
	sort.Slice(p.accrual, func(i, j int) bool {
		return p.accrual[i].PermutedOff < p.accrual[j].PermutedOff
	})

	// Packetize into generations.
	p.m = erasure.PacketsFor(len(p.permuted), cfg.PacketSize)
	raw, err := erasure.Split(p.permuted, p.m, cfg.PacketSize)
	if err != nil {
		return nil, err
	}
	cookedSeq := 0
	for rawOff := 0; rawOff < p.m; rawOff += cfg.MaxGeneration {
		end := rawOff + cfg.MaxGeneration
		if end > p.m {
			end = p.m
		}
		mb := end - rawOff
		nb := cfg.cookedFor(mb)
		coder, err := erasure.Shared(mb, nb)
		if err != nil {
			return nil, fmt.Errorf("generation at raw %d: %w", rawOff, err)
		}
		p.gens = append(p.gens, &generation{
			coder:     coder,
			rawOff:    rawOff,
			cookedOff: cookedSeq,
			raw:       raw[rawOff:end],
		})
		cookedSeq += nb
	}
	p.n = cookedSeq
	return p, nil
}

// Doc returns the planned document.
func (p *Plan) Doc() *document.Document { return p.doc }

// M returns the total number of raw packets.
func (p *Plan) M() int { return p.m }

// N returns the total number of cooked packets.
func (p *Plan) N() int { return p.n }

// Generations returns the number of dispersal groups.
func (p *Plan) Generations() int { return len(p.gens) }

// Config returns the resolved configuration (defaults applied).
func (p *Plan) Config() Config { return p.cfg }

// Segments returns the ranked unit segments in transmission order. The
// returned slice is shared; callers must not modify it.
func (p *Plan) Segments() []UnitSegment { return p.segments }

// AccrualSegments returns the paragraph-level segments against which
// information content accrues, in transmission order. The returned slice
// is shared; callers must not modify it.
func (p *Plan) AccrualSegments() []UnitSegment { return p.accrual }

// segmentContaining returns the ranked segment whose unit extent covers
// the leaf.
func (p *Plan) segmentContaining(leaf *document.Unit) (UnitSegment, bool) {
	for _, seg := range p.segments {
		if leaf.Start >= seg.Unit.Start && leaf.End <= seg.Unit.End {
			return seg, true
		}
	}
	return UnitSegment{}, false
}

// CookedPayload returns the cooked packet payload for a global sequence
// number. The returned slice is shared with the plan; callers must not
// modify it. A seq inside a generation's clear-text prefix is served
// straight from the raw packets; a seq past a prefix triggers a one-time
// encode of exactly that parity row.
func (p *Plan) CookedPayload(seq int) ([]byte, error) {
	g, idx, err := p.locate(seq)
	if err != nil {
		return nil, err
	}
	gen := p.gens[g]
	if idx < gen.coder.M() {
		return gen.raw[idx], nil
	}
	return gen.ensureParityRow(idx-gen.coder.M(), &p.parityEncodes)
}

// ParityEncodes returns how many generations have had their parity
// packets encoded so far. It is zero until some caller asks for a cooked
// packet past a clear-text prefix — the lazy-parity invariant.
func (p *Plan) ParityEncodes() int64 { return p.parityEncodes.Load() }

// Frame marshals the cooked packet at seq into its wire frame
// (sequence number + CRC + payload).
func (p *Plan) Frame(seq int) ([]byte, error) {
	return p.AppendFrame(nil, seq)
}

// AppendFrame appends the cooked packet's wire frame to dst and returns
// the extended slice. Stream loops reuse one buffer across a round, so
// steady-state transmission allocates nothing per frame.
//mobweb:hot per-frame marshal of the steady-state transmit loop
func (p *Plan) AppendFrame(dst []byte, seq int) ([]byte, error) {
	payload, err := p.CookedPayload(seq)
	if err != nil {
		return nil, err
	}
	coreMetrics.frameMarshals.Add(1)
	return packet.Packet{Seq: seq, Payload: payload}.AppendMarshal(dst)
}

// Locate maps a global cooked sequence number to its dispersal group and
// the row index within that group's cooked packets. The frame cache keys
// entries by (generation, row) so that one cooked frame is shared across
// every connection asking for it.
func (p *Plan) Locate(seq int) (gen, row int, err error) {
	return p.locate(seq)
}

// locate maps a global cooked sequence number to (generation, index).
func (p *Plan) locate(seq int) (genIdx, idx int, err error) {
	if seq < 0 || seq >= p.n {
		return 0, 0, fmt.Errorf("core: cooked seq %d outside [0, %d)", seq, p.n)
	}
	for g := range p.gens {
		off := p.gens[g].cookedOff
		if seq < off+p.gens[g].coder.N() {
			return g, seq - off, nil
		}
	}
	return 0, 0, fmt.Errorf("core: cooked seq %d unmapped", seq)
}

// clearRawIndex returns the global raw packet index carried in clear text
// by cooked seq, or -1 if seq is a redundancy packet.
func (p *Plan) clearRawIndex(seq int) int {
	g, idx, err := p.locate(seq)
	if err != nil {
		return -1
	}
	if idx < p.gens[g].coder.M() {
		return p.gens[g].rawOff + idx
	}
	return -1
}

// permutedToOriginal copies the permuted stream back into original
// document order.
func (p *Plan) permutedToOriginal(permuted []byte) []byte {
	out := make([]byte, len(p.body))
	for _, seg := range p.segments {
		copy(out[seg.OrigOff:seg.OrigOff+seg.Length], permuted[seg.PermutedOff:seg.PermutedOff+seg.Length])
	}
	return out
}

// BodySize returns the original document body size in bytes.
func (p *Plan) BodySize() int { return len(p.body) }
