package core

import (
	"fmt"

	"mobweb/internal/erasure"
	"mobweb/internal/fountain"
	"mobweb/internal/packet"
)

// This file is the plan-side fountain glue: per-generation encoders
// built lazily against the plan's raw packets, the IC-derived symbol
// weights that realize unequal error protection, and the fountain frame
// marshaling path mirroring Plan.AppendFrame.

// FountainWeights computes the per-raw-packet IC weights of dispersal
// group g: each accrual segment spreads its score uniformly over the
// raw packets its permuted extent touches, so a packet's weight is the
// information content per byte it carries. Encoder (from the plan) and
// decoder (from the transmitted layout) both call this — the accrual
// scores round-trip JSON exactly, so the derived specs are identical.
func (l Layout) FountainWeights(g int) ([]float64, error) {
	if g < 0 || g >= len(l.Shapes) {
		return nil, fmt.Errorf("core: fountain weights for generation %d of %d", g, len(l.Shapes))
	}
	rawOff := 0
	for i := 0; i < g; i++ {
		rawOff += l.Shapes[i].M
	}
	m := l.Shapes[g].M
	sp := l.PacketSize
	lo, hi := rawOff*sp, (rawOff+m)*sp
	weights := make([]float64, m)
	for _, seg := range l.Accrual {
		if seg.Length == 0 || seg.Score == 0 {
			continue
		}
		segLo, segHi := seg.PermutedOff, seg.PermutedOff+seg.Length
		if segHi <= lo || segLo >= hi {
			continue
		}
		perByte := seg.Score / float64(seg.Length)
		first, last := segLo/sp, (segHi-1)/sp
		for pkt := first; pkt <= last; pkt++ {
			if pkt < rawOff || pkt >= rawOff+m {
				continue
			}
			ov := overlap(segLo, segHi, pkt*sp, (pkt+1)*sp)
			if ov > 0 {
				weights[pkt-rawOff] += perByte * float64(ov)
			}
		}
	}
	return weights, nil
}

func overlap(aLo, aHi, bLo, bHi int) int {
	lo, hi := aLo, aHi
	if bLo > lo {
		lo = bLo
	}
	if bHi < hi {
		hi = bHi
	}
	return hi - lo
}

// FountainLayout returns the plan's transmission geometry for the
// rateless codec under the given stream seed. Shapes carry N = M: a
// fountain stream has no fixed cooked count, and the receiver tracks
// packets by packed (gen, seq) instead of the cooked seq space.
func (p *Plan) FountainLayout(seed uint64) Layout {
	l := p.Layout()
	l.Codec = erasure.CodecFountain
	l.Seed = seed
	for i := range l.Shapes {
		l.Shapes[i].N = l.Shapes[i].M
	}
	return l
}

// fountainEncKey identifies one lazily-built generation encoder.
type fountainEncKey struct {
	gen  int
	seed uint64
}

// fountainEncoder returns the plan's encoder for (gen, seed), building
// it once. Encoders reference the plan's raw packets without copying;
// the weights come from the same FountainWeights the client will run
// against the transmitted layout.
func (p *Plan) fountainEncoder(gen int, seed uint64) (*fountain.Encoder, error) {
	if gen < 0 || gen >= len(p.gens) {
		return nil, fmt.Errorf("core: fountain generation %d of %d", gen, len(p.gens))
	}
	p.fmu.Lock()
	defer p.fmu.Unlock()
	key := fountainEncKey{gen: gen, seed: seed}
	if enc, ok := p.fenc[key]; ok {
		return enc, nil
	}
	weights, err := p.FountainLayout(seed).FountainWeights(gen)
	if err != nil {
		return nil, err
	}
	enc, err := fountain.NewEncoder(gen, seed, p.gens[gen].raw, weights)
	if err != nil {
		return nil, fmt.Errorf("core: fountain generation %d: %w", gen, err)
	}
	if p.fenc == nil {
		p.fenc = make(map[fountainEncKey]*fountain.Encoder, len(p.gens))
	}
	p.fenc[key] = enc
	return enc, nil
}

// FountainPayload cooks the rateless packet (gen, seq) of the seeded
// stream into a fresh slice.
func (p *Plan) FountainPayload(seed uint64, gen, seq int) ([]byte, error) {
	enc, err := p.fountainEncoder(gen, seed)
	if err != nil {
		return nil, err
	}
	return enc.Payload(seq), nil
}

// FountainFrame marshals rateless packet (gen, seq) into its wire
// frame (codec id + seed + gen + seq + CRC + payload).
func (p *Plan) FountainFrame(seed uint64, gen, seq int) ([]byte, error) {
	return p.AppendFountainFrame(nil, seed, gen, seq)
}

// AppendFountainFrame appends the rateless packet's wire frame to dst
// and returns the extended slice.
//mobweb:hot per-frame marshal of the fountain transmit loop
func (p *Plan) AppendFountainFrame(dst []byte, seed uint64, gen, seq int) ([]byte, error) {
	enc, err := p.fountainEncoder(gen, seed)
	if err != nil {
		return nil, err
	}
	base := len(dst)
	var hdr [packet.FountainOverhead]byte // stack scratch; FinishFountainFrame overwrites it
	dst = append(dst, hdr[:]...)
	dst = enc.AppendPayload(dst, seq)
	if err := packet.FinishFountainFrame(dst[base:], seed, gen, seq); err != nil {
		return nil, err
	}
	coreMetrics.frameMarshals.Add(1)
	return dst, nil
}
