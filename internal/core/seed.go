package core

import (
	"fmt"

	"mobweb/internal/erasure"
)

// This file is the receiver's persistence seam: the accessors a
// packet store needs to drain a receiver's state to disk, and the
// seeding entry points that refill a fresh receiver from stored state
// after a process restart — so a resumed fetch opens with a Have list
// instead of refetching bytes the radio already delivered.

// Packet returns the held intact cooked payload for a sequence number
// (packed (gen, seq) under the fountain codec). The returned slice is
// the receiver's own storage and must not be modified.
func (r *Receiver) Packet(seq int) ([]byte, bool) {
	payload, ok := r.intact[seq]
	return payload, ok
}

// DecodedGeneration returns generation g's raw packets, decoding (and
// memoizing) on first use. It errors while the generation is not yet
// reconstructible. The returned slices are shared with the memo and
// must not be modified.
func (r *Receiver) DecodedGeneration(g int) ([][]byte, error) {
	if g < 0 || g >= len(r.layout.Shapes) {
		return nil, fmt.Errorf("core: generation %d of %d", g, len(r.layout.Shapes))
	}
	if !r.GenerationReconstructible(g) {
		return nil, ErrNotReconstructible
	}
	return r.decodeGeneration(g)
}

// DoneGenerations lists the reconstructible generations in ascending
// order — what a resuming client reports so the transmitter spends no
// air time on generations it can already decode.
func (r *Receiver) DoneGenerations() []int {
	var out []int
	for g := range r.layout.Shapes {
		if r.GenerationReconstructible(g) {
			out = append(out, g)
		}
	}
	return out
}

// SeedDecodedGeneration installs generation g's raw packets wholesale —
// the restart path, where a persistent store holds generations decoded
// in a previous process life. raw must be exactly the generation's M
// packets of the layout's packet size.
//
// Under the fixed-rate systematic codec the raw packets are the
// generation's clear-prefix cooked rows verbatim, so they re-enter as
// held packets too: the Have list then covers them and a server
// honoring DoneGens or Have sends nothing for this generation. Under
// the fountain codec the raw symbols correspond to no particular wire
// packet; the generation is marked seeded-complete instead, and the
// client's stopgen/DoneGens feedback keeps the transmitter off it.
func (r *Receiver) SeedDecodedGeneration(g int, raw [][]byte) error {
	if g < 0 || g >= len(r.layout.Shapes) {
		return fmt.Errorf("core: generation %d of %d", g, len(r.layout.Shapes))
	}
	shape := r.layout.Shapes[g]
	if len(raw) != shape.M {
		return fmt.Errorf("core: generation %d seed has %d raw packets, want %d", g, len(raw), shape.M)
	}
	for i, p := range raw {
		if len(p) != r.layout.PacketSize {
			return fmt.Errorf("core: generation %d raw packet %d is %d bytes, want %d",
				g, i, len(p), r.layout.PacketSize)
		}
	}
	own := make([][]byte, len(raw))
	for i, p := range raw {
		own[i] = append([]byte(nil), p...)
	}
	if r.layout.Codec == erasure.CodecFountain {
		if r.seeded == nil {
			r.seeded = make([]bool, len(r.layout.Shapes))
		}
		r.decoded[g] = own
		r.seeded[g] = true
		return nil
	}
	_, _, cookedOff := r.genOffsets(g)
	for i, p := range own {
		if err := r.Add(cookedOff+i, p); err != nil {
			return err
		}
	}
	r.decoded[g] = own
	return nil
}

// seededGen reports whether generation g was installed wholesale by
// SeedDecodedGeneration (fountain only; the fixed-rate path re-enters
// seeds as ordinary held packets).
func (r *Receiver) seededGen(g int) bool {
	return r.seeded != nil && r.seeded[g]
}
