package core

import (
	"bytes"
	"testing"
)

// rebasePlans builds two plans over the same document differing only in
// redundancy ratio, with the generation split pinned so the geometries
// are rebase-compatible by construction.
func rebasePlans(t *testing.T, gammaA, gammaB float64) (*Plan, *Plan, []byte) {
	t.Helper()
	doc, scores := paperShapedDoc(t)
	planA, err := NewPlanWithScores(doc, scores, Config{Gamma: gammaA, MaxGeneration: 128})
	if err != nil {
		t.Fatal(err)
	}
	planB, err := NewPlanWithScores(doc, scores, Config{Gamma: gammaB, MaxGeneration: 128})
	if err != nil {
		t.Fatal(err)
	}
	return planA, planB, doc.Body()
}

func TestRebaseAcrossGammaChange(t *testing.T) {
	planA, planB, body := rebasePlans(t, 1.2, 1.8)

	// Receive a mix of data and parity packets under the smaller plan.
	rcvA, err := NewReceiver(planA)
	if err != nil {
		t.Fatal(err)
	}
	fed := map[int]bool{}
	for _, seq := range []int{0, 1, 5, 17, 39, 40, planA.N() - 1} {
		frame, err := planA.Frame(seq)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := rcvA.AddFrame(frame); err != nil {
			t.Fatal(err)
		}
		fed[seq] = true
	}

	// Rebase onto the γ-expanded layout: every held packet must carry
	// over, because systematic dispersal rows are independent of N.
	rcvB, err := rcvA.Rebase(planB.Layout())
	if err != nil {
		t.Fatal(err)
	}
	if rcvB.IntactCount() != len(fed) {
		t.Fatalf("rebase kept %d packets, want %d", rcvB.IntactCount(), len(fed))
	}
	for seq := range fed {
		if !rcvB.Held(seq) {
			t.Errorf("packet %d lost in rebase (same generation split ⇒ same global seq)", seq)
		}
	}

	// Fill the remainder from the new plan and reconstruct.
	for seq := 0; seq < planB.N() && !rcvB.Reconstructible(); seq++ {
		if rcvB.Held(seq) {
			continue
		}
		frame, err := planB.Frame(seq)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := rcvB.AddFrame(frame); err != nil {
			t.Fatal(err)
		}
	}
	got, err := rcvB.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatal("reconstruction after rebase is not byte-identical")
	}
}

func TestRebaseShrinkDropsOutOfRangePackets(t *testing.T) {
	planSmall, planBig, body := rebasePlans(t, 1.2, 1.8)

	rcvBig, err := NewReceiver(planBig)
	if err != nil {
		t.Fatal(err)
	}
	// Hold the highest-index parity packet (beyond the small plan's N)
	// plus a couple of survivors.
	for _, seq := range []int{2, 3, planBig.N() - 1} {
		frame, err := planBig.Frame(seq)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := rcvBig.AddFrame(frame); err != nil {
			t.Fatal(err)
		}
	}
	rcvSmall, err := rcvBig.Rebase(planSmall.Layout())
	if err != nil {
		t.Fatal(err)
	}
	if rcvSmall.IntactCount() != 2 {
		t.Fatalf("shrink rebase kept %d packets, want 2 (out-of-range parity dropped)", rcvSmall.IntactCount())
	}
	for seq := 0; seq < planSmall.N() && !rcvSmall.Reconstructible(); seq++ {
		if rcvSmall.Held(seq) {
			continue
		}
		frame, err := planSmall.Frame(seq)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := rcvSmall.AddFrame(frame); err != nil {
			t.Fatal(err)
		}
	}
	got, err := rcvSmall.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatal("reconstruction after shrink rebase is not byte-identical")
	}
}

func TestRebaseRejectsIncompatibleGeometry(t *testing.T) {
	doc, scores := paperShapedDoc(t)
	plan, err := NewPlanWithScores(doc, scores, Config{Gamma: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := NewReceiver(plan)
	if err != nil {
		t.Fatal(err)
	}

	other := plan.Layout()
	other.PacketSize = plan.Layout().PacketSize * 2
	if _, err := rcv.Rebase(other); err == nil {
		t.Error("packet-size change accepted")
	}

	// A different generation split (same document) must be refused:
	// cooked packets are only stable under an identical split.
	split, err := NewPlanWithScores(doc, scores, Config{Gamma: 1.5, MaxGeneration: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rcv.Rebase(split.Layout()); err == nil {
		t.Error("generation-split change accepted")
	}
}
