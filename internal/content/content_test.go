package content

import (
	"math"
	"testing"

	"mobweb/internal/document"
	"mobweb/internal/textproc"
)

const epsilon = 1e-9

// paperDoc builds a small research-paper-shaped document with distinct
// keyword distributions per section, so ranking behaviour is observable.
func paperDoc(t testing.TB) (*document.Document, *textproc.Index, *SC) {
	t.Helper()
	b := document.NewBuilder()
	b.Open(document.LODSection, "0", "Abstract")
	b.Paragraph("Mobile web browsing over weakly connected wireless channels wastes bandwidth when documents are irrelevant.")
	b.Open(document.LODSection, "1", "Introduction")
	b.Paragraph("Mobile clients browse web documents. Mobile environments corrupt transmission.")
	b.Paragraph("Search engines return irrelevant documents that waste wireless bandwidth.")
	b.Open(document.LODSection, "2", "Encoding")
	b.Open(document.LODSubsection, "2.0", "Dispersal")
	b.Paragraph("Vandermonde matrices disperse raw packets into cooked packets for reconstruction.")
	b.Paragraph("Any subset of cooked packets reconstructs the original raw packets.")
	doc, err := b.Build("paper.xml", "FT-MRT")
	if err != nil {
		t.Fatal(err)
	}
	idx, err := textproc.BuildIndex(doc, textproc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Build(doc, idx)
	if err != nil {
		t.Fatal(err)
	}
	return doc, idx, sc
}

func TestNotionString(t *testing.T) {
	tests := []struct {
		n    Notion
		want string
	}{
		{NotionIC, "IC"}, {NotionQIC, "QIC"}, {NotionMQIC, "MQIC"}, {Notion(0), "Notion(0)"},
	}
	for _, tt := range tests {
		if got := tt.n.String(); got != tt.want {
			t.Errorf("Notion(%d).String() = %q, want %q", int(tt.n), got, tt.want)
		}
	}
}

func TestBuildNil(t *testing.T) {
	if _, err := Build(nil, nil); err == nil {
		t.Error("nil inputs accepted")
	}
}

func TestWeights(t *testing.T) {
	occ := map[string]int{"frequent": 8, "medium": 4, "rare": 1}
	w := Weights(occ)
	// Most frequent keyword: ω = 1 − log2(8/8) = 1.
	if math.Abs(w["frequent"]-1) > epsilon {
		t.Errorf("ω(frequent) = %v, want 1", w["frequent"])
	}
	// medium: 1 − log2(4/8) = 2.
	if math.Abs(w["medium"]-2) > epsilon {
		t.Errorf("ω(medium) = %v, want 2", w["medium"])
	}
	// rare: 1 − log2(1/8) = 4.
	if math.Abs(w["rare"]-4) > epsilon {
		t.Errorf("ω(rare) = %v, want 4", w["rare"])
	}
}

func TestWeightsEmpty(t *testing.T) {
	if w := Weights(nil); len(w) != 0 {
		t.Errorf("Weights(nil) = %v, want empty", w)
	}
	if w := Weights(map[string]int{"x": 0}); len(w) != 0 {
		t.Errorf("zero-count keyword weighted: %v", w)
	}
}

func TestWeightsL2NarrowsSpread(t *testing.T) {
	occ := map[string]int{"a": 8, "b": 1}
	winf := Weights(occ)
	wl2 := WeightsL2(occ)
	spreadInf := winf["b"] - winf["a"]
	spreadL2 := wl2["b"] - wl2["a"]
	if math.Abs(spreadInf-spreadL2) > epsilon {
		// Both are log-ratio based so the spread is identical; what
		// changes is the absolute level: L2 norm >= infinity norm, so all
		// L2 weights are at least the infinity-norm weights.
		t.Logf("spread inf %v vs l2 %v", spreadInf, spreadL2)
	}
	if wl2["a"] < winf["a"] {
		t.Errorf("L2 weight %v below infinity-norm weight %v", wl2["a"], winf["a"])
	}
}

func TestInfinityNorm(t *testing.T) {
	if got := InfinityNorm(map[string]int{"a": 3, "b": 7, "c": 2}); got != 7 {
		t.Errorf("InfinityNorm = %d, want 7", got)
	}
	if got := InfinityNorm(nil); got != 0 {
		t.Errorf("InfinityNorm(nil) = %d, want 0", got)
	}
}

func TestICDocumentSumsToOne(t *testing.T) {
	doc, _, sc := paperDoc(t)
	if got := sc.IC(doc.Root.ID); math.Abs(got-1) > epsilon {
		t.Errorf("IC(document) = %v, want 1", got)
	}
}

func TestICAdditiveRule(t *testing.T) {
	doc, _, sc := paperDoc(t)
	for _, u := range doc.Units() {
		if u.IsLeaf() {
			continue
		}
		sum := 0.0
		for _, c := range u.Children {
			sum += sc.IC(c.ID)
		}
		// Parent may carry own text (titles) beyond children, so parent
		// IC >= Σ children; in this fixture titles contribute, so allow
		// parent >= sum within the full unit mass.
		if sc.IC(u.ID)+epsilon < sum {
			t.Errorf("unit %q: IC %v below children sum %v", u.Label, sc.IC(u.ID), sum)
		}
	}
}

func TestICAdditiveExactWithoutTitles(t *testing.T) {
	// With no titles the additive rule is exact.
	b := document.NewBuilder()
	b.Open(document.LODSection, "0", "")
	b.Paragraph("alpha beta gamma alpha")
	b.Paragraph("beta gamma delta")
	b.Open(document.LODSection, "1", "")
	b.Paragraph("epsilon zeta alpha")
	doc, err := b.Build("t", "")
	if err != nil {
		t.Fatal(err)
	}
	idx, err := textproc.BuildIndex(doc, textproc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Build(doc, idx)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range doc.Units() {
		if u.IsLeaf() {
			continue
		}
		sum := 0.0
		for _, c := range u.Children {
			sum += sc.IC(c.ID)
		}
		if math.Abs(sc.IC(u.ID)-sum) > epsilon {
			t.Errorf("unit %q: IC %v != children sum %v", u.Label, sc.IC(u.ID), sum)
		}
	}
	if math.Abs(sc.IC(doc.Root.ID)-1) > epsilon {
		t.Errorf("document IC = %v, want 1", sc.IC(doc.Root.ID))
	}
}

func TestQICAdditiveAndNormalized(t *testing.T) {
	doc, _, sc := paperDoc(t)
	q := textproc.QueryVector("browsing mobile web")
	s := sc.Evaluate(q)
	if math.Abs(s.QIC[doc.Root.ID]-1) > epsilon {
		t.Errorf("QIC(document) = %v, want 1", s.QIC[doc.Root.ID])
	}
	if math.Abs(s.MQIC[doc.Root.ID]-1) > epsilon {
		t.Errorf("MQIC(document) = %v, want 1", s.MQIC[doc.Root.ID])
	}
}

func TestQICZeroWithoutQueryWords(t *testing.T) {
	// Section 2 (encoding) shares no keyword with the query — its QIC
	// must be exactly zero, Table 1's signature behaviour (e.g. §3.2 rows
	// show 0.00000), while MQIC stays positive.
	doc, _, sc := paperDoc(t)
	q := textproc.QueryVector("browsing mobile web")
	s := sc.Evaluate(q)
	secs, err := doc.UnitsAt(document.LODSection)
	if err != nil {
		t.Fatal(err)
	}
	encoding := secs[2]
	if s.QIC[encoding.ID] != 0 {
		t.Errorf("QIC(encoding section) = %v, want 0", s.QIC[encoding.ID])
	}
	if s.MQIC[encoding.ID] <= 0 {
		t.Errorf("MQIC(encoding section) = %v, want > 0", s.MQIC[encoding.ID])
	}
}

func TestQICBoostsQueryRelevantUnits(t *testing.T) {
	doc, _, sc := paperDoc(t)
	q := textproc.QueryVector("browsing mobile web")
	s := sc.Evaluate(q)
	secs, err := doc.UnitsAt(document.LODSection)
	if err != nil {
		t.Fatal(err)
	}
	abstract, encoding := secs[0], secs[2]
	if s.QIC[abstract.ID] <= s.QIC[encoding.ID] {
		t.Errorf("QIC(abstract)=%v not above QIC(encoding)=%v", s.QIC[abstract.ID], s.QIC[encoding.ID])
	}
	// Relative to its static IC, the abstract must gain share under QIC.
	if s.QIC[abstract.ID] <= s.IC[abstract.ID] {
		t.Errorf("QIC(abstract)=%v did not exceed IC=%v despite matching the query", s.QIC[abstract.ID], s.IC[abstract.ID])
	}
}

func TestEmptyQueryDegeneratesToIC(t *testing.T) {
	doc, _, sc := paperDoc(t)
	s := sc.Evaluate(nil)
	for _, u := range doc.Units() {
		if s.QIC[u.ID] != 0 {
			t.Errorf("unit %q: empty-query QIC = %v, want 0", u.Label, s.QIC[u.ID])
		}
		if math.Abs(s.MQIC[u.ID]-s.IC[u.ID]) > epsilon {
			t.Errorf("unit %q: empty-query MQIC = %v, want IC %v", u.Label, s.MQIC[u.ID], s.IC[u.ID])
		}
	}
}

func TestRepeatedQueryWordBiasesRanking(t *testing.T) {
	// Repeating a querying word gives it... a LOWER weight under the
	// paper's formula (ω_a^Q = 1 − log₂(|a_Q|/‖V_Q‖∞)): the repeated
	// word becomes the norm anchor at weight 1 while singleton words get
	// weight 1 − log₂(1/2) = 2. The paper describes repetition as
	// emphasis; under the symmetric formula the emphasized word's ω^Q is
	// the baseline and others are inflated relative to it — what matters
	// operationally is that scores CHANGE with repetition. Verify both
	// the exact weights and that unit ordering responds.
	qSingle := textproc.QueryVector("vandermonde mobile")
	qRepeat := textproc.QueryVector("vandermonde vandermonde mobile")

	wSingle := Weights(qSingle)
	if math.Abs(wSingle["vandermonde"]-1) > epsilon || math.Abs(wSingle["mobile"]-1) > epsilon {
		t.Fatalf("single-occurrence query weights = %v, want all 1", wSingle)
	}
	wRepeat := Weights(qRepeat)
	if math.Abs(wRepeat["vandermonde"]-1) > epsilon {
		t.Errorf("repeated word weight = %v, want 1 (norm anchor)", wRepeat["vandermonde"])
	}
	if math.Abs(wRepeat["mobile"]-2) > epsilon {
		t.Errorf("singleton word weight = %v, want 2", wRepeat["mobile"])
	}

	_, _, sc := paperDoc(t)
	s1 := sc.Evaluate(qSingle)
	s2 := sc.Evaluate(qRepeat)
	changed := false
	for id := range s1.QIC {
		if math.Abs(s1.QIC[id]-s2.QIC[id]) > epsilon {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("query-word repetition left every QIC unchanged")
	}
}

func TestRankUnitsDescending(t *testing.T) {
	_, _, sc := paperDoc(t)
	q := textproc.QueryVector("browsing mobile web")
	for _, notion := range []Notion{NotionIC, NotionQIC, NotionMQIC} {
		ranked, err := sc.RankUnits(document.LODParagraph, notion, q)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(ranked); i++ {
			if ranked[i].Score > ranked[i-1].Score+epsilon {
				t.Errorf("%v: rank %d score %v above rank %d score %v", notion, i, ranked[i].Score, i-1, ranked[i-1].Score)
			}
		}
	}
}

func TestRankUnitsInvalidLOD(t *testing.T) {
	_, _, sc := paperDoc(t)
	if _, err := sc.RankUnits(document.LOD(0), NotionIC, nil); err == nil {
		t.Error("invalid LOD accepted")
	}
}

func TestScoresGetUnknownNotion(t *testing.T) {
	_, _, sc := paperDoc(t)
	s := sc.Evaluate(nil)
	if got := s.Get(Notion(0), 0); got != 0 {
		t.Errorf("unknown notion score = %v, want 0", got)
	}
}

func TestWeightAccessor(t *testing.T) {
	_, idx, sc := paperDoc(t)
	for w := range idx.Doc {
		if sc.Weight(w) < 1 {
			t.Errorf("keyword %q weight %v below 1; infinity norm guarantees >= 1", w, sc.Weight(w))
		}
	}
	if sc.Weight("nonexistent-keyword") != 0 {
		t.Error("absent keyword has non-zero weight")
	}
}

func BenchmarkEvaluate(b *testing.B) {
	_, _, sc := paperDoc(b)
	q := textproc.QueryVector("browsing mobile web")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Evaluate(q)
	}
}
