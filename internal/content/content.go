// Package content computes the information-content notions of §3.1–3.2:
//
//   - IC: static information content p_i of an organizational unit, a
//     keyword-weighted mass normalized so the document sums to one;
//   - QIC: query-based information content q_i^Q, re-weighting keywords by
//     the querying words (product combination);
//   - MQIC: modified QIC q̃_i^Q, the scaled-sum combination that avoids
//     zeroing units that miss every querying word.
//
// Keyword weights use the paper's logarithmic form
// ω_a = 1 − log₂(|a_D| / ‖V_D‖) with the infinity norm ‖V_D‖∞ = max|v_i|,
// chosen so weights need no human calibration. All three notions obey the
// additive rule: a unit's score equals the sum of its sub-units' scores,
// and the document totals 1 (when its denominator is non-zero).
package content

import (
	"fmt"
	"math"
	"sort"

	"mobweb/internal/document"
	"mobweb/internal/textproc"
)

// Notion selects which information-content definition ranks units.
type Notion int

// The three notions of the paper. They start at 1 so the zero value is
// invalid.
const (
	// NotionIC is the static, query-independent content of §3.1.
	NotionIC Notion = iota + 1
	// NotionQIC is the query-based content of §3.2 (product weights).
	NotionQIC
	// NotionMQIC is the modified query-based content (scaled sum).
	NotionMQIC
)

// String names the notion as used in Table 1's column headers.
func (n Notion) String() string {
	switch n {
	case NotionIC:
		return "IC"
	case NotionQIC:
		return "QIC"
	case NotionMQIC:
		return "MQIC"
	default:
		return fmt.Sprintf("Notion(%d)", int(n))
	}
}

// SC is the structural characteristic: the unit tree plus the logical
// keyword index and derived keyword weights. It is immutable after Build
// and safe for concurrent use.
type SC struct {
	doc     *document.Document
	index   *textproc.Index
	weights map[string]float64 // ω_a per keyword
	denomIC float64            // Σ_d |d_D|·ω_d
	ic      map[int]float64    // cached static IC per unit
}

// Build derives the SC from a document and its keyword index.
func Build(doc *document.Document, index *textproc.Index) (*SC, error) {
	if doc == nil || index == nil {
		return nil, fmt.Errorf("content: nil document or index")
	}
	sc := &SC{
		doc:     doc,
		index:   index,
		weights: Weights(index.Doc),
	}
	for w, c := range index.Doc {
		sc.denomIC += float64(c) * sc.weights[w]
	}
	sc.ic = make(map[int]float64, len(index.Units))
	for unitID, counts := range index.Units {
		num := 0.0
		for w, c := range counts {
			num += float64(c) * sc.weights[w]
		}
		sc.ic[unitID] = safeDiv(num, sc.denomIC)
	}
	return sc, nil
}

// Weights computes ω_a = 1 − log₂(|a_D| / ‖V_D‖∞) for every keyword in
// an occurrence vector. The most frequent keyword gets weight exactly 1;
// rarer keywords get larger weights. An empty vector yields an empty map.
func Weights(occurrences map[string]int) map[string]float64 {
	norm := InfinityNorm(occurrences)
	w := make(map[string]float64, len(occurrences))
	if norm == 0 {
		return w
	}
	for a, c := range occurrences {
		if c <= 0 {
			continue
		}
		w[a] = 1 - math.Log2(float64(c)/float64(norm))
	}
	return w
}

// WeightsL2 is the alternative using the Euclidean norm, kept for the
// norm-choice ablation (DESIGN.md §5). The paper chooses the infinity
// norm; with L2 the most frequent keyword's weight exceeds 1 and the
// relative spread between rare and frequent words narrows.
func WeightsL2(occurrences map[string]int) map[string]float64 {
	var sumSq float64
	for _, c := range occurrences {
		sumSq += float64(c) * float64(c)
	}
	norm := math.Sqrt(sumSq)
	w := make(map[string]float64, len(occurrences))
	if norm == 0 {
		return w
	}
	for a, c := range occurrences {
		if c <= 0 {
			continue
		}
		w[a] = 1 - math.Log2(float64(c)/norm)
	}
	return w
}

// InfinityNorm returns max |v_i| of an occurrence vector.
func InfinityNorm(occurrences map[string]int) int {
	m := 0
	for _, c := range occurrences {
		if c > m {
			m = c
		}
	}
	return m
}

// Doc returns the underlying document.
func (sc *SC) Doc() *document.Document { return sc.doc }

// Index returns the underlying keyword index.
func (sc *SC) Index() *textproc.Index { return sc.index }

// Weight returns ω_a for a keyword (zero when absent).
func (sc *SC) Weight(keyword string) float64 { return sc.weights[keyword] }

// IC returns the static information content p_i of a unit.
func (sc *SC) IC(unitID int) float64 { return sc.ic[unitID] }

// Scores holds all three notions evaluated per unit for one query.
type Scores struct {
	// IC, QIC and MQIC map unit ID → score.
	IC, QIC, MQIC map[int]float64
}

// Get returns the score for the requested notion.
func (s *Scores) Get(n Notion, unitID int) float64 {
	switch n {
	case NotionIC:
		return s.IC[unitID]
	case NotionQIC:
		return s.QIC[unitID]
	case NotionMQIC:
		return s.MQIC[unitID]
	default:
		return 0
	}
}

// Evaluate computes IC, QIC and MQIC for every unit against a query
// occurrence vector V_Q (from textproc.QueryVector). A nil or empty query
// yields QIC = MQIC = 0 everywhere except MQIC degenerates to IC scaled
// weights with λ undefined; we define the empty-query MQIC as IC itself,
// the natural limit as the query vanishes.
func (sc *SC) Evaluate(queryVec map[string]int) *Scores {
	s := &Scores{
		IC:   make(map[int]float64, len(sc.ic)),
		QIC:  make(map[int]float64, len(sc.ic)),
		MQIC: make(map[int]float64, len(sc.ic)),
	}
	for id, v := range sc.ic {
		s.IC[id] = v
	}
	if len(queryVec) == 0 {
		for id, v := range sc.ic {
			s.QIC[id] = 0
			s.MQIC[id] = v
		}
		return s
	}

	qWeights := Weights(queryVec) // ω_a^Q, zero when |a_Q| = 0 by absence

	// QIC denominator: Σ_{d ∈ D∩Q} |d_D|·ω_d·ω_d^Q.
	var denomQ float64
	for w, c := range sc.index.Doc {
		if qw, ok := qWeights[w]; ok {
			denomQ += float64(c) * sc.weights[w] * qw
		}
	}

	// MQIC scaling factor λ = Σ|a_D| / Σ|a_Q| and denominator
	// Σ_d |d_D|·(ω_d + λ·ω_d^Q).
	var totalQ float64
	for _, c := range queryVec {
		totalQ += float64(c)
	}
	lambda := 0.0
	if totalQ > 0 {
		lambda = float64(sc.index.TotalDoc) / totalQ
	}
	var denomM float64
	for w, c := range sc.index.Doc {
		denomM += float64(c) * (sc.weights[w] + lambda*qWeights[w])
	}

	for unitID, counts := range sc.index.Units {
		var numQ, numM float64
		for w, c := range counts {
			qw := qWeights[w]
			numM += float64(c) * (sc.weights[w] + lambda*qw)
			if qw != 0 {
				numQ += float64(c) * sc.weights[w] * qw
			}
		}
		s.QIC[unitID] = safeDiv(numQ, denomQ)
		s.MQIC[unitID] = safeDiv(numM, denomM)
	}
	return s
}

// Ranked pairs a unit with its score for ordering.
type Ranked struct {
	Unit  *document.Unit
	Score float64
}

// RankUnits orders the document's units at the given LOD by descending
// score under the chosen notion, breaking ties by document order (stable),
// which is the transmission order ⟨n_j1, …, n_jm⟩ of §4.2.
func (sc *SC) RankUnits(lod document.LOD, notion Notion, queryVec map[string]int) ([]Ranked, error) {
	units, err := sc.doc.UnitsAt(lod)
	if err != nil {
		return nil, err
	}
	scores := sc.Evaluate(queryVec)
	out := make([]Ranked, len(units))
	for i, u := range units {
		out[i] = Ranked{Unit: u, Score: scores.Get(notion, u.ID)}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out, nil
}

func safeDiv(num, denom float64) float64 {
	if denom == 0 {
		return 0
	}
	return num / denom
}
