// Package profile implements user-interest profiles with relevance
// feedback, the personalization layer §2 surveys and §6 lists as future
// work ("intelligent prefetching based on information content and
// user-profiling").
//
// A Profile is a weighted keyword vector over the same lemmatized
// vocabulary the SC pipeline produces. It adapts by relevance feedback:
// documents the user reads in full reinforce their keywords, documents
// discarded early depress them (Rocchio-style additive updates with
// exponential decay). The profile scores candidate documents for
// prefetching and re-ranks search hits.
package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"mobweb/internal/content"
	"mobweb/internal/textproc"
)

// Config tunes profile adaptation.
type Config struct {
	// PositiveRate scales reinforcement from relevant documents;
	// defaults to 0.2.
	PositiveRate float64
	// NegativeRate scales depression from discarded documents; defaults
	// to 0.1 (feedback is asymmetric: a discard is weaker evidence than
	// a full read).
	NegativeRate float64
	// Decay multiplies every weight after each feedback event, letting
	// stale interests fade; defaults to 0.995.
	Decay float64
	// MaxTerms caps the profile vocabulary; the weakest terms are
	// evicted first. Defaults to 512.
	MaxTerms int
}

func (c Config) withDefaults() Config {
	if c.PositiveRate == 0 {
		c.PositiveRate = 0.2
	}
	if c.NegativeRate == 0 {
		c.NegativeRate = 0.1
	}
	if c.Decay == 0 {
		c.Decay = 0.995
	}
	if c.MaxTerms == 0 {
		c.MaxTerms = 512
	}
	return c
}

func (c Config) validate() error {
	if c.PositiveRate < 0 || c.NegativeRate < 0 {
		return fmt.Errorf("profile: negative learning rate")
	}
	if c.Decay <= 0 || c.Decay > 1 {
		return fmt.Errorf("profile: decay %v outside (0, 1]", c.Decay)
	}
	if c.MaxTerms < 1 {
		return fmt.Errorf("profile: max terms %d", c.MaxTerms)
	}
	return nil
}

// Profile is a user's adaptive interest vector. It is safe for
// concurrent use.
type Profile struct {
	mu      sync.RWMutex
	cfg     Config
	weights map[string]float64
	events  int
}

// New returns an empty profile.
func New(cfg Config) (*Profile, error) {
	full := cfg.withDefaults()
	if err := full.validate(); err != nil {
		return nil, err
	}
	return &Profile{cfg: full, weights: make(map[string]float64)}, nil
}

// Feedback describes one browsing outcome for adaptation.
type Feedback struct {
	// SC is the browsed document's structural characteristic.
	SC *content.SC
	// Query is the query that surfaced the document (may be empty).
	Query string
	// Relevant reports the user's judgment: true for a document read in
	// full, false for one discarded early.
	Relevant bool
	// FractionRead is the information content consumed before judgment,
	// scaling the update strength in [0, 1]; zero is treated as 1 for
	// relevant documents and as a full-strength discard otherwise.
	FractionRead float64
}

// Observe folds one browsing outcome into the profile.
func (p *Profile) Observe(fb Feedback) error {
	if fb.SC == nil {
		return fmt.Errorf("profile: feedback without SC")
	}
	idx := fb.SC.Index()
	// Document term weights: occurrence × keyword weight.
	terms := make(map[string]float64, len(idx.Doc))
	for w, c := range idx.Doc {
		terms[w] = float64(c) * fb.SC.Weight(w)
	}
	p.apply(terms, fb.Query, fb.Relevant, fb.FractionRead)
	return nil
}

// ObserveText folds a browsing outcome into the profile from raw text —
// the client-side path, where the mobile device holds reconstructed or
// partially-rendered text but not the server's structural
// characteristic. The text runs through the same recognizer, lemmatizer
// and stop-word filter as server-side indexing, with weights derived
// from the text's own occurrence vector.
func (p *Profile) ObserveText(text, query string, relevant bool, fractionRead float64) {
	occ := make(map[string]int)
	for _, w := range textproc.Tokenize(text) {
		lemma := textproc.Lemmatize(w)
		if textproc.IsStopWord(w) || textproc.IsStopWord(lemma) {
			continue
		}
		occ[lemma]++
	}
	weights := content.Weights(occ)
	terms := make(map[string]float64, len(occ))
	for w, c := range occ {
		terms[w] = float64(c) * weights[w]
	}
	p.apply(terms, query, relevant, fractionRead)
}

// sortedKeys returns a map's keys in ascending order. Every float
// accumulation in this package iterates sorted keys: float addition is
// not associative, so summing in map order would make scores (and the
// top-k prediction ranking built on them) vary run to run at the ULP
// level — the nondeterminism the lint analyzer holds this package
// against.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// apply runs the Rocchio-style update with an L2-normalized term vector
// so long documents don't dominate.
func (p *Profile) apply(terms map[string]float64, query string, relevant bool, fractionRead float64) {
	strength := fractionRead
	if strength <= 0 || strength > 1 {
		strength = 1
	}
	rate := p.cfg.PositiveRate * strength
	if !relevant {
		rate = -p.cfg.NegativeRate * strength
	}
	var norm float64
	for _, w := range sortedKeys(terms) {
		norm += terms[w] * terms[w]
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for w := range p.weights {
		p.weights[w] *= p.cfg.Decay
	}
	for w, v := range terms {
		p.weights[w] += rate * v / norm
	}
	// Query terms the user typed are first-class interest evidence.
	if relevant && query != "" {
		for w := range textproc.QueryVector(query) {
			p.weights[w] += rate
		}
	}
	p.events++
	p.evictLocked()
}

// ScoreText rates raw text against the profile, the client-side analogue
// of Score.
func (p *Profile) ScoreText(text string) float64 {
	occ := make(map[string]int)
	for _, w := range textproc.Tokenize(text) {
		lemma := textproc.Lemmatize(w)
		if textproc.IsStopWord(w) || textproc.IsStopWord(lemma) {
			continue
		}
		occ[lemma]++
	}
	weights := content.Weights(occ)
	p.mu.RLock()
	defer p.mu.RUnlock()
	if len(p.weights) == 0 {
		return 0
	}
	var dot, docNorm, profNorm float64
	for _, w := range sortedKeys(occ) {
		v := float64(occ[w]) * weights[w]
		docNorm += v * v
		if pw, ok := p.weights[w]; ok {
			dot += pw * v
		}
	}
	for _, w := range sortedKeys(p.weights) {
		profNorm += p.weights[w] * p.weights[w]
	}
	if dot == 0 || docNorm == 0 || profNorm == 0 {
		return 0
	}
	return dot / (math.Sqrt(docNorm) * math.Sqrt(profNorm))
}

// evictLocked trims the vocabulary to MaxTerms by absolute weight and
// drops near-zero terms. Eviction ties break on the term name so equal
// weights evict the same terms whatever order the map yielded them —
// the surviving vocabulary (and every prediction built from it) is a
// pure function of the feedback history.
func (p *Profile) evictLocked() {
	for w, v := range p.weights { //mobweb:nondet-ok delete-by-predicate; surviving set is order-independent
		if math.Abs(v) < 1e-9 {
			delete(p.weights, w)
		}
	}
	if len(p.weights) <= p.cfg.MaxTerms {
		return
	}
	type term struct {
		w string
		v float64
	}
	all := make([]term, 0, len(p.weights))
	for w, v := range p.weights { //mobweb:nondet-ok sorted below with a total order
		all = append(all, term{w, math.Abs(v)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].w < all[j].w
	})
	for _, t := range all[p.cfg.MaxTerms:] {
		delete(p.weights, t.w)
	}
}

// Events returns the number of feedback observations folded in.
func (p *Profile) Events() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.events
}

// Weight returns the current interest weight of a (lemmatized) term.
func (p *Profile) Weight(term string) float64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.weights[term]
}

// Terms returns the profile's terms ordered by descending weight.
func (p *Profile) Terms() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, 0, len(p.weights))
	for w := range p.weights {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool {
		if p.weights[out[i]] != p.weights[out[j]] {
			return p.weights[out[i]] > p.weights[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// Score rates a document's match to the profile: the cosine between the
// profile vector and the document's weighted term vector, in [-1, 1].
// An empty profile scores everything 0.
func (p *Profile) Score(sc *content.SC) float64 {
	if sc == nil {
		return 0
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if len(p.weights) == 0 {
		return 0
	}
	idx := sc.Index()
	var dot, docNorm, profNorm float64
	for _, w := range sortedKeys(idx.Doc) {
		v := float64(idx.Doc[w]) * sc.Weight(w)
		docNorm += v * v
		if pw, ok := p.weights[w]; ok {
			dot += pw * v
		}
	}
	for _, w := range sortedKeys(p.weights) {
		profNorm += p.weights[w] * p.weights[w]
	}
	if dot == 0 || docNorm == 0 || profNorm == 0 {
		return 0
	}
	return dot / (math.Sqrt(docNorm) * math.Sqrt(profNorm))
}

// Blend combines a search-engine score with the profile score using the
// interpolation weight beta in [0, 1] (0 = pure search, 1 = pure
// profile), the standard personalization mix.
func (p *Profile) Blend(searchScore float64, sc *content.SC, beta float64) float64 {
	if beta < 0 {
		beta = 0
	}
	if beta > 1 {
		beta = 1
	}
	return (1-beta)*searchScore + beta*p.Score(sc)
}

// snapshot is the serialized form of a profile.
type snapshot struct {
	Weights map[string]float64 `json:"weights"`
	Events  int                `json:"events"`
}

// Save writes the profile as JSON, for persistence across sessions on
// the mobile client's local storage.
func (p *Profile) Save(w io.Writer) error {
	p.mu.RLock()
	snap := snapshot{Weights: make(map[string]float64, len(p.weights)), Events: p.events}
	for k, v := range p.weights {
		snap.Weights[k] = v
	}
	p.mu.RUnlock()
	return json.NewEncoder(w).Encode(snap)
}

// Load restores a saved profile, replacing current state.
func (p *Profile) Load(r io.Reader) error {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("profile: load: %w", err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.weights = snap.Weights
	if p.weights == nil {
		p.weights = make(map[string]float64)
	}
	p.events = snap.Events
	p.evictLocked()
	return nil
}
