package profile

import "testing"

const wirelessText = "Wireless channels corrupt packets during mobile transmission. " +
	"Erasure coding protects wireless transmission against corruption."

const gardeningText = "Tomato seedlings need morning sunlight and compost. " +
	"Prune roses after the last frost for healthy blooms."

func TestObserveTextPositive(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	p.ObserveText(wirelessText, "wireless transmission", true, 1)
	if p.Events() != 1 {
		t.Errorf("events = %d, want 1", p.Events())
	}
	if got := p.ScoreText(wirelessText); got <= 0 {
		t.Errorf("ScoreText of reinforced topic = %v, want > 0", got)
	}
	if ws, gs := p.ScoreText(wirelessText), p.ScoreText(gardeningText); ws <= gs {
		t.Errorf("wireless %v not above gardening %v", ws, gs)
	}
}

func TestObserveTextNegative(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	p.ObserveText(gardeningText, "", false, 0.3)
	if got := p.ScoreText(gardeningText); got >= 0 {
		t.Errorf("score after discard = %v, want < 0", got)
	}
}

func TestObserveTextStopWordsOnlyIsNoOp(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	p.ObserveText("the of and is", "", true, 1)
	if p.Events() != 0 {
		t.Error("stop-word-only text counted as an event")
	}
}

func TestTextAndSCPathsAgree(t *testing.T) {
	// Learning from an SC and from that document's text must point the
	// profile the same way (exact weights differ because the SC may
	// apply keyword-frequency thresholds, but the sign and ranking must
	// agree).
	sc := wirelessSC(t)
	fromSC, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fromSC.Observe(Feedback{SC: sc, Relevant: true}); err != nil {
		t.Fatal(err)
	}
	fromText, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	fromText.ObserveText(wirelessText, "", true, 1)

	for _, p := range []*Profile{fromSC, fromText} {
		if p.Weight("wireless") <= 0 {
			t.Errorf("wireless weight %v, want > 0", p.Weight("wireless"))
		}
		if p.ScoreText(wirelessText) <= p.ScoreText(gardeningText) {
			t.Error("profile does not prefer its own topic")
		}
	}
}

func TestScoreTextEmptyProfile(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.ScoreText(wirelessText); got != 0 {
		t.Errorf("empty profile ScoreText = %v, want 0", got)
	}
	p.ObserveText(wirelessText, "", true, 1)
	if got := p.ScoreText(""); got != 0 {
		t.Errorf("ScoreText of empty text = %v, want 0", got)
	}
}
