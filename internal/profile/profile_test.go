package profile

import (
	"bytes"
	"sync"
	"testing"

	"mobweb/internal/content"
	"mobweb/internal/document"
	"mobweb/internal/textproc"
)

func buildSC(t testing.TB, name string, paragraphs ...string) *content.SC {
	t.Helper()
	b := document.NewBuilder()
	b.Open(document.LODSection, "", "")
	for _, p := range paragraphs {
		b.Paragraph(p)
	}
	doc, err := b.Build(name, name)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := textproc.BuildIndex(doc, textproc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := content.Build(doc, idx)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func wirelessSC(t testing.TB) *content.SC {
	return buildSC(t, "wireless.xml",
		"Wireless channels corrupt packets during mobile transmission.",
		"Erasure coding protects wireless transmission against corruption.")
}

func gardeningSC(t testing.TB) *content.SC {
	return buildSC(t, "gardening.xml",
		"Tomato seedlings need morning sunlight and compost.",
		"Prune roses after the last frost for healthy blooms.")
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Decay: 1.5}); err == nil {
		t.Error("decay > 1 accepted")
	}
	if _, err := New(Config{PositiveRate: -1}); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := New(Config{MaxTerms: -1}); err == nil {
		t.Error("negative max terms accepted")
	}
}

func TestEmptyProfileScoresZero(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Score(wirelessSC(t)); got != 0 {
		t.Errorf("empty profile score = %v, want 0", got)
	}
	if got := p.Score(nil); got != 0 {
		t.Errorf("nil SC score = %v, want 0", got)
	}
}

func TestPositiveFeedbackRaisesScore(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	wireless := wirelessSC(t)
	gardening := gardeningSC(t)
	if err := p.Observe(Feedback{SC: wireless, Relevant: true, Query: "wireless transmission"}); err != nil {
		t.Fatal(err)
	}
	ws := p.Score(wireless)
	gs := p.Score(gardening)
	if ws <= 0 {
		t.Errorf("score of reinforced topic = %v, want > 0", ws)
	}
	if ws <= gs {
		t.Errorf("wireless score %v not above gardening %v", ws, gs)
	}
}

func TestNegativeFeedbackDepresses(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	gardening := gardeningSC(t)
	if err := p.Observe(Feedback{SC: gardening, Relevant: false}); err != nil {
		t.Fatal(err)
	}
	if got := p.Score(gardening); got >= 0 {
		t.Errorf("score after discard = %v, want < 0", got)
	}
}

func TestFractionReadScalesUpdate(t *testing.T) {
	weak, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	strong, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	sc := wirelessSC(t)
	if err := weak.Observe(Feedback{SC: sc, Relevant: true, FractionRead: 0.1}); err != nil {
		t.Fatal(err)
	}
	if err := strong.Observe(Feedback{SC: sc, Relevant: true, FractionRead: 1}); err != nil {
		t.Fatal(err)
	}
	if weak.Weight("wireless") >= strong.Weight("wireless") {
		t.Errorf("weak update %v not below strong %v",
			weak.Weight("wireless"), strong.Weight("wireless"))
	}
}

func TestFeedbackRequiresSC(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Observe(Feedback{}); err == nil {
		t.Error("feedback without SC accepted")
	}
}

func TestDecayFadesOldInterests(t *testing.T) {
	p, err := New(Config{Decay: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	wireless := wirelessSC(t)
	gardening := gardeningSC(t)
	if err := p.Observe(Feedback{SC: wireless, Relevant: true}); err != nil {
		t.Fatal(err)
	}
	before := p.Weight("wireless")
	// Many unrelated observations decay the wireless interest.
	for i := 0; i < 8; i++ {
		if err := p.Observe(Feedback{SC: gardening, Relevant: true}); err != nil {
			t.Fatal(err)
		}
	}
	after := p.Weight("wireless")
	if after >= before/2 {
		t.Errorf("wireless weight %v did not decay from %v", after, before)
	}
}

func TestMaxTermsEviction(t *testing.T) {
	p, err := New(Config{MaxTerms: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Observe(Feedback{SC: wirelessSC(t), Relevant: true}); err != nil {
		t.Fatal(err)
	}
	if got := len(p.Terms()); got > 3 {
		t.Errorf("profile holds %d terms, cap is 3", got)
	}
}

func TestBlend(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	sc := wirelessSC(t)
	if err := p.Observe(Feedback{SC: sc, Relevant: true}); err != nil {
		t.Fatal(err)
	}
	pure := p.Blend(0.8, sc, 0)
	if pure != 0.8 {
		t.Errorf("beta=0 blend = %v, want search score 0.8", pure)
	}
	personal := p.Blend(0.8, sc, 1)
	if personal != p.Score(sc) {
		t.Errorf("beta=1 blend = %v, want profile score %v", personal, p.Score(sc))
	}
	mixed := p.Blend(0.8, sc, 0.5)
	if mixed <= min(pure, personal)-1e-12 || mixed >= max(pure, personal)+1e-12 {
		t.Errorf("beta=0.5 blend %v outside [%v, %v]", mixed, min(pure, personal), max(pure, personal))
	}
	// Out-of-range betas clamp.
	if p.Blend(0.8, sc, -1) != pure {
		t.Error("beta < 0 not clamped")
	}
	if p.Blend(0.8, sc, 2) != personal {
		t.Error("beta > 1 not clamped")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	sc := wirelessSC(t)
	if err := p.Observe(Feedback{SC: sc, Relevant: true, Query: "wireless"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Events() != p.Events() {
		t.Errorf("events %d, want %d", restored.Events(), p.Events())
	}
	// Map-iteration order varies the float summation order, so compare
	// with a tolerance.
	if diff := restored.Score(sc) - p.Score(sc); diff > 1e-12 || diff < -1e-12 {
		t.Errorf("restored score %v, want %v", restored.Score(sc), p.Score(sc))
	}
}

func TestLoadGarbage(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Load(bytes.NewReader([]byte("{not json"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestConcurrentUse(t *testing.T) {
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	sc := wirelessSC(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := p.Observe(Feedback{SC: sc, Relevant: true}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p.Score(sc)
				p.Terms()
			}
		}()
	}
	wg.Wait()
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
