package profile

import "sort"

// This file is the prediction side of the profile: turning the learned
// interest vector into a ranked prefetch shortlist. §6 names
// "intelligent prefetching based on information content and
// user-profiling" as the natural extension of the paper's system — the
// speculative scheduler in internal/prefetch consumes exactly this
// ranking during idle link time.

// Prediction is one ranked prefetch candidate.
type Prediction struct {
	// Name identifies the document.
	Name string
	// Score is the profile's interest estimate for it (cosine to the
	// profile vector, possibly blended with a search score upstream).
	Score float64
}

// Candidate is one scorable document offered to PredictTopK. Score is
// supplied by the caller — typically Profile.Score(sc) server-side or
// Profile.ScoreText client-side, optionally Blend-ed — so the ranking
// itself has no opinion about where interest estimates come from.
type Candidate struct {
	Name  string
	Score float64
}

// PredictTopK returns the k highest-scoring candidates in descending
// score order. The ranking is deterministic under any input order:
// equal scores break ties on the document name, so two runs over the
// same candidate set — however shuffled — produce the same shortlist
// in the same order. Candidates with non-positive scores are excluded:
// the profile has no evidence of interest, and speculative air time
// must not be spent on them. k <= 0 or an empty field returns nil.
func PredictTopK(cands []Candidate, k int) []Prediction {
	if k <= 0 {
		return nil
	}
	kept := make([]Prediction, 0, len(cands))
	for _, c := range cands {
		if c.Score > 0 && c.Name != "" {
			kept = append(kept, Prediction{Name: c.Name, Score: c.Score})
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Score != kept[j].Score {
			return kept[i].Score > kept[j].Score
		}
		return kept[i].Name < kept[j].Name
	})
	// Duplicate names keep only their best-scored entry, so a caller
	// merging several candidate sources cannot inflate one document's
	// presence in the shortlist.
	out := kept[:0]
	seen := make(map[string]bool, len(kept))
	for _, p := range kept {
		if seen[p.Name] {
			continue
		}
		seen[p.Name] = true
		out = append(out, p)
		if len(out) == k {
			break
		}
	}
	return append([]Prediction(nil), out...)
}
