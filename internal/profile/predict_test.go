package profile

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// TestPredictTopKStableUnderShuffle is the determinism property: the
// top-k shortlist must be identical for every permutation of the
// candidate set, including ties that only the name tie-break can order.
func TestPredictTopKStableUnderShuffle(t *testing.T) {
	var cands []Candidate
	for i := 0; i < 30; i++ {
		// Buckets of deliberately equal scores force the tie-break.
		cands = append(cands, Candidate{
			Name:  fmt.Sprintf("doc-%02d.xml", i),
			Score: float64(1+i%5) * 0.1,
		})
	}
	want := PredictTopK(cands, 10)
	if len(want) != 10 {
		t.Fatalf("top-10 of 30 positives returned %d", len(want))
	}
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		shuffled := append([]Candidate(nil), cands...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		got := PredictTopK(shuffled, 10)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: rank %d = %+v, want %+v (input order leaked into ranking)",
					trial, i, got[i], want[i])
			}
		}
	}
	// The ordering invariants themselves.
	for i := 1; i < len(want); i++ {
		if want[i].Score > want[i-1].Score {
			t.Fatal("ranking not descending by score")
		}
		if want[i].Score == want[i-1].Score && want[i].Name <= want[i-1].Name {
			t.Fatal("tie not broken ascending by name")
		}
	}
}

func TestPredictTopKFiltersAndDedupes(t *testing.T) {
	cands := []Candidate{
		{Name: "a.xml", Score: 0.5},
		{Name: "a.xml", Score: 0.9}, // duplicate: best score wins, once
		{Name: "b.xml", Score: 0},   // no evidence: excluded
		{Name: "c.xml", Score: -0.2},
		{Name: "", Score: 0.8}, // unnamed: excluded
		{Name: "d.xml", Score: 0.7},
	}
	got := PredictTopK(cands, 10)
	if len(got) != 2 || got[0] != (Prediction{Name: "a.xml", Score: 0.9}) || got[1] != (Prediction{Name: "d.xml", Score: 0.7}) {
		t.Fatalf("got %+v", got)
	}
	if PredictTopK(cands, 0) != nil || PredictTopK(nil, 5) != nil {
		t.Fatal("degenerate inputs must return nil")
	}
	if got := PredictTopK(cands, 1); len(got) != 1 {
		t.Fatalf("k=1 returned %d", len(got))
	}
}

// TestProfileScoresAreReproducible rebuilds a profile from the same
// feedback history and demands bit-identical scores: the sorted-key
// accumulation means no map-iteration ULP drift reaches the ranking.
func TestProfileScoresAreReproducible(t *testing.T) {
	docs := make([]string, 8)
	for i := range docs {
		var sb strings.Builder
		for j := 0; j < 40; j++ {
			fmt.Fprintf(&sb, "term%d wireless browsing document content mobile %d ", (i*7+j*3)%23, j)
		}
		docs[i] = sb.String()
	}
	build := func() *Profile {
		p, err := New(Config{MaxTerms: 32})
		if err != nil {
			t.Fatal(err)
		}
		for i, d := range docs {
			p.ObserveText(d, "wireless browsing", i%3 != 0, 0.8)
		}
		return p
	}
	a, b := build(), build()
	for _, d := range docs {
		sa, sb := a.ScoreText(d), b.ScoreText(d)
		if sa != sb {
			t.Fatalf("identical histories scored %v vs %v", sa, sb)
		}
	}
	// The same equality must hold for the shortlist built from them.
	mk := func(p *Profile) []Prediction {
		var cands []Candidate
		for i, d := range docs {
			cands = append(cands, Candidate{Name: fmt.Sprintf("d%d", i), Score: p.ScoreText(d)})
		}
		return PredictTopK(cands, 4)
	}
	pa, pb := mk(a), mk(b)
	if len(pa) != len(pb) {
		t.Fatalf("shortlists differ in length: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("shortlist rank %d: %+v vs %+v", i, pa[i], pb[i])
		}
	}
}
