package search

import (
	"sync"
	"testing"

	"mobweb/internal/document"
	"mobweb/internal/textproc"
)

func buildDoc(t *testing.T, name, title string, paragraphs ...string) *document.Document {
	t.Helper()
	b := document.NewBuilder()
	b.Open(document.LODSection, "", title)
	for _, p := range paragraphs {
		b.Paragraph(p)
	}
	d, err := b.Build(name, title)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func populated(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine(textproc.Options{})
	docs := []*document.Document{
		buildDoc(t, "mobile.xml", "Mobile Browsing",
			"Mobile web browsing over wireless channels.",
			"Mobile clients browse web documents with limited bandwidth."),
		buildDoc(t, "coding.xml", "Erasure Coding",
			"Vandermonde matrices disperse packets for reconstruction.",
			"Erasure codes recover raw packets from cooked packets."),
		buildDoc(t, "mixed.xml", "Mobile Coding",
			"Mobile devices can decode erasure coded packets.",
			"Wireless transmission benefits from redundancy."),
	}
	for _, d := range docs {
		if err := e.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func TestAddAndLen(t *testing.T) {
	e := populated(t)
	if e.Len() != 3 {
		t.Errorf("Len = %d, want 3", e.Len())
	}
	names := e.Names()
	want := []string{"coding.xml", "mixed.xml", "mobile.xml"}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("Names[%d] = %q, want %q", i, names[i], n)
		}
	}
}

func TestAddNil(t *testing.T) {
	e := NewEngine(textproc.Options{})
	if err := e.Add(nil); err == nil {
		t.Error("nil document accepted")
	}
}

func TestSearchRanksRelevantFirst(t *testing.T) {
	e := populated(t)
	hits := e.Search("mobile web browsing", 10)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	if hits[0].Name != "mobile.xml" {
		t.Errorf("top hit = %q, want mobile.xml", hits[0].Name)
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Errorf("hit %d outranks predecessor", i)
		}
	}
	// coding.xml shares no query words → absent.
	for _, h := range hits {
		if h.Name == "coding.xml" {
			t.Error("irrelevant document returned")
		}
	}
}

func TestSearchCarriesQueryVecAndSC(t *testing.T) {
	e := populated(t)
	hits := e.Search("erasure packets", 10)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	h := hits[0]
	if h.SC == nil {
		t.Fatal("hit missing SC")
	}
	if len(h.QueryVec) == 0 {
		t.Fatal("hit missing query vector")
	}
	// The query vector must evaluate without error against the SC.
	s := h.SC.Evaluate(h.QueryVec)
	if s.QIC[h.SC.Doc().Root.ID] <= 0 {
		t.Error("QIC of matched document root is zero")
	}
}

func TestSearchLimit(t *testing.T) {
	e := populated(t)
	hits := e.Search("mobile wireless packets", 1)
	if len(hits) != 1 {
		t.Errorf("limit 1 returned %d hits", len(hits))
	}
	if got := e.Search("mobile", 0); got != nil {
		t.Error("limit 0 returned hits")
	}
}

func TestSearchStopWordsOnly(t *testing.T) {
	e := populated(t)
	if hits := e.Search("the of and", 5); len(hits) != 0 {
		t.Errorf("stop-word query returned %d hits", len(hits))
	}
}

func TestSearchNoMatch(t *testing.T) {
	e := populated(t)
	if hits := e.Search("quantum chromodynamics", 5); len(hits) != 0 {
		t.Errorf("unmatched query returned %d hits", len(hits))
	}
}

func TestReAddReplaces(t *testing.T) {
	e := populated(t)
	replacement := buildDoc(t, "mobile.xml", "Replaced",
		"Entirely different content about gardening and botany.")
	if err := e.Add(replacement); err != nil {
		t.Fatal(err)
	}
	if e.Len() != 3 {
		t.Errorf("Len after replace = %d, want 3", e.Len())
	}
	if hits := e.Search("browsing wireless", 5); len(hits) > 0 {
		for _, h := range hits {
			if h.Name == "mobile.xml" {
				t.Error("stale postings still match replaced document")
			}
		}
	}
	hits := e.Search("gardening", 5)
	if len(hits) != 1 || hits[0].Name != "mobile.xml" {
		t.Errorf("replacement not searchable: %v", hits)
	}
}

func TestAddXMLAndHTML(t *testing.T) {
	e := NewEngine(textproc.Options{})
	xml := []byte(`<doc><title>X</title><section><paragraph>xml content words</paragraph></section></doc>`)
	if err := e.AddXML("a.xml", xml); err != nil {
		t.Fatal(err)
	}
	html := []byte(`<html><body><h1>H</h1><p>html content words</p></body></html>`)
	if err := e.AddHTML("b.html", html); err != nil {
		t.Fatal(err)
	}
	if e.Len() != 2 {
		t.Errorf("Len = %d, want 2", e.Len())
	}
	if err := e.AddXML("bad.xml", []byte("")); err == nil {
		t.Error("empty XML accepted")
	}
}

func TestSCAccessor(t *testing.T) {
	e := populated(t)
	if _, ok := e.SC("mobile.xml"); !ok {
		t.Error("SC lookup failed for indexed document")
	}
	if _, ok := e.SC("missing.xml"); ok {
		t.Error("SC returned for unknown document")
	}
}

func TestConcurrentSearchAndAdd(t *testing.T) {
	e := populated(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				e.Search("mobile packets", 5)
			}
		}()
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				d := buildDoc(t, "extra.xml", "Extra", "additional mobile wireless text")
				if err := e.Add(d); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
