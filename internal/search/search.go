// Package search provides the keyword search front end of the browsing
// pipeline: documents are indexed with the textproc pipeline, queries are
// matched with the vector-space model (§3.3 notes this model "has been
// shown to be competitive"), and each hit carries the structural
// characteristic plus the query vector so the transmitter can order units
// by QIC.
package search

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"sync"

	"mobweb/internal/content"
	"mobweb/internal/document"
	"mobweb/internal/markup"
	"mobweb/internal/textproc"
)

// Engine is an in-memory inverted index over a document collection. It is
// safe for concurrent use: reads take a shared lock and additions an
// exclusive one.
type Engine struct {
	mu      sync.RWMutex
	entries map[string]*entry
	// posting maps keyword → document names containing it.
	posting map[string]map[string]bool
	opts    textproc.Options
}

type entry struct {
	doc *document.Document
	idx *textproc.Index
	sc  *content.SC
	// norm is the Euclidean norm of the document's weighted term vector,
	// precomputed for cosine scoring.
	norm float64
}

// NewEngine returns an empty search engine using the given pipeline
// options.
func NewEngine(opts textproc.Options) *Engine {
	return &Engine{
		entries: make(map[string]*entry),
		posting: make(map[string]map[string]bool),
		opts:    opts,
	}
}

// Add indexes a parsed document. Re-adding a name replaces the previous
// version.
func (e *Engine) Add(doc *document.Document) error {
	if doc == nil {
		return fmt.Errorf("search: nil document")
	}
	idx, err := textproc.BuildIndex(doc, e.opts)
	if err != nil {
		return err
	}
	sc, err := content.Build(doc, idx)
	if err != nil {
		return err
	}
	var norm float64
	for w, c := range idx.Doc {
		v := float64(c) * sc.Weight(w)
		norm += v * v
	}
	ent := &entry{doc: doc, idx: idx, sc: sc, norm: math.Sqrt(norm)}

	e.mu.Lock()
	defer e.mu.Unlock()
	if old, ok := e.entries[doc.Name]; ok {
		for w := range old.idx.Doc {
			delete(e.posting[w], doc.Name)
		}
	}
	e.entries[doc.Name] = ent
	for w := range idx.Doc {
		set := e.posting[w]
		if set == nil {
			set = make(map[string]bool)
			e.posting[w] = set
		}
		set[doc.Name] = true
	}
	return nil
}

// AddXML parses and indexes an XML document.
func (e *Engine) AddXML(name string, data []byte) error {
	doc, err := markup.ParseXML(bytes.NewReader(data), name, markup.DefaultTagMap())
	if err != nil {
		return err
	}
	return e.Add(doc)
}

// AddHTML parses and indexes an HTML document.
func (e *Engine) AddHTML(name string, data []byte) error {
	doc, err := markup.ParseHTML(bytes.NewReader(data), name)
	if err != nil {
		return err
	}
	return e.Add(doc)
}

// Len returns the number of indexed documents.
func (e *Engine) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.entries)
}

// Names returns the indexed document names, sorted.
func (e *Engine) Names() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.entries))
	for n := range e.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SC returns the structural characteristic for a document name.
func (e *Engine) SC(name string) (*content.SC, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ent, ok := e.entries[name]
	if !ok {
		return nil, false
	}
	return ent.sc, true
}

// Hit is one search result: the matched document with its
// query-similarity score and the query vector needed for QIC ordering
// downstream.
type Hit struct {
	// Name and Title identify the document.
	Name, Title string
	// Score is the cosine similarity between the weighted query and
	// document term vectors, in (0, 1].
	Score float64
	// SC is the document's structural characteristic.
	SC *content.SC
	// QueryVec is the occurrence vector of the query, ready for
	// content.SC.Evaluate or core.NewPlan.
	QueryVec map[string]int
}

// Search runs a keyword query and returns up to limit hits ordered by
// descending score (ties broken by name for determinism). A query with no
// indexable words returns no hits.
func (e *Engine) Search(query string, limit int) []Hit {
	qv := textproc.QueryVector(query)
	if len(qv) == 0 || limit == 0 {
		return nil
	}
	qWeights := content.Weights(qv)
	var qNorm float64
	for a, c := range qv {
		v := float64(c) * qWeights[a]
		qNorm += v * v
	}
	qNorm = math.Sqrt(qNorm)

	e.mu.RLock()
	defer e.mu.RUnlock()

	// Gather candidates from the postings of each query term.
	candidates := make(map[string]bool)
	for a := range qv {
		for name := range e.posting[a] {
			candidates[name] = true
		}
	}
	hits := make([]Hit, 0, len(candidates))
	for name := range candidates {
		ent := e.entries[name]
		var dot float64
		for a, qc := range qv {
			dc := ent.idx.Doc[a]
			if dc == 0 {
				continue
			}
			dot += float64(qc) * qWeights[a] * float64(dc) * ent.sc.Weight(a)
		}
		if dot == 0 || ent.norm == 0 || qNorm == 0 {
			continue
		}
		hits = append(hits, Hit{
			Name:     name,
			Title:    ent.doc.Title,
			Score:    dot / (ent.norm * qNorm),
			SC:       ent.sc,
			QueryVec: qv,
		})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Name < hits[j].Name
	})
	if limit > 0 && len(hits) > limit {
		hits = hits[:limit]
	}
	return hits
}
