package lint_test

import (
	"testing"

	"mobweb/internal/lint"
	"mobweb/internal/lint/linttest"
)

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, lint.HotAlloc, "./testdata/src/hotalloc")
}

// The production hot paths — the GF(2^8) kernels, CRC, packet marshal/
// parse, frame append/write — are all annotated //mobweb:hot and must
// stay allocation-clean (their AllocsPerRun tests pin the runtime side;
// this pins the static side).
func TestHotAllocCleanOnAnnotatedTree(t *testing.T) {
	diags, err := lint.Run(".",
		[]string{"mobweb/internal/gf256", "mobweb/internal/crc", "mobweb/internal/packet", "mobweb/internal/core", "mobweb/internal/transport"},
		[]*lint.Analyzer{lint.HotAlloc})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
