package lint_test

import (
	"sort"
	"testing"

	"mobweb/internal/lint"
)

const (
	lockorderPath = "mobweb/internal/lint/testdata/src/lockorder"
	goroleakPath  = "mobweb/internal/lint/testdata/src/goroleak"
)

// The call graph is keyed by types.Func FullName strings because
// cross-package type-checking against export data gives distinct
// *types.Func values for the same function; these tests pin the naming
// scheme and the defer/go flags the analyzers rely on.
func TestCallGraphNodesAndSites(t *testing.T) {
	pkgs, err := lint.Load(".", "./testdata/src/lockorder")
	if err != nil {
		t.Fatal(err)
	}
	prog := lint.NewProgram(pkgs)
	g := prog.Graph

	caller := g.Nodes[lockorderPath+".cThenD"]
	if caller == nil {
		t.Fatalf("no node for cThenD; have %v", g.SortedNames())
	}
	foundLockD := false
	for _, site := range caller.Calls {
		if site.Callee == lockorderPath+".lockD" {
			foundLockD = true
			if site.Deferred || site.Go {
				t.Errorf("plain call recorded as deferred=%v go=%v", site.Deferred, site.Go)
			}
		}
	}
	if !foundLockD {
		t.Errorf("cThenD's call to lockD not recorded; sites: %+v", caller.Calls)
	}

	spawner := g.Nodes[lockorderPath+".fThenSpawnE"]
	if spawner == nil {
		t.Fatal("no node for fThenSpawnE")
	}
	foundGo := false
	for _, site := range spawner.Calls {
		if site.Callee == lockorderPath+".lockE" {
			foundGo = true
			if !site.Go {
				t.Error("go lockE() must carry the Go flag (lockorder excludes goroutine edges)")
			}
		}
	}
	if !foundGo {
		t.Errorf("fThenSpawnE's go statement not recorded; sites: %+v", spawner.Calls)
	}

	names := g.SortedNames()
	if !sort.StringsAreSorted(names) {
		t.Error("SortedNames must be sorted for deterministic diagnostics")
	}
}

// Function literals get their own nodes named parent$N so a goroutine
// body is never analyzed under its spawner's locks.
func TestCallGraphFuncLitNodes(t *testing.T) {
	pkgs, err := lint.Load(".", "./testdata/src/goroleak")
	if err != nil {
		t.Fatal(err)
	}
	prog := lint.NewProgram(pkgs)
	lit := prog.Graph.Nodes[goroleakPath+".leakyLit$1"]
	if lit == nil {
		t.Fatalf("no node for leakyLit's literal; have %v", prog.Graph.SortedNames())
	}
	if lit.Decl != nil || lit.Lit == nil {
		t.Error("literal node must carry Lit, not Decl")
	}
	if body := lit.Body(); body == nil || prog.Graph.NodeFor(body) != lit {
		t.Error("NodeFor must map a literal's body back to its node")
	}
}
