package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NondetPackages lists the import paths whose outputs must be
// bit-reproducible: they feed the golden chaos trace, the seeded
// simulator figures, and the frame-cache/plan-cache keys. Wall-clock
// reads and unseeded randomness inside them make golden tests flaky and
// cache keys unstable. Overridable in tests (linttest.Override).
var NondetPackages = []string{
	"mobweb/internal/channel",
	"mobweb/internal/core",
	"mobweb/internal/crc",
	"mobweb/internal/erasure",
	"mobweb/internal/ewma",
	"mobweb/internal/fountain",
	"mobweb/internal/framecache",
	"mobweb/internal/gf256",
	"mobweb/internal/nbinom",
	"mobweb/internal/obs",
	"mobweb/internal/packet",
	"mobweb/internal/planner",
	"mobweb/internal/prefetch",
	"mobweb/internal/profile",
	"mobweb/internal/shard",
	"mobweb/internal/sim",
	"mobweb/internal/store",
	"mobweb/internal/trace",
	"mobweb/internal/transport",
}

// NonDet flags determinism hazards in the packages above:
//
//   - wall-clock reads (time.Now/Since/Until, timers/tickers)
//   - unseeded randomness: math/rand's package-level functions, which
//     draw from the global source (rand.New/NewSource and methods on an
//     explicit *rand.Rand are the seeded, reproducible idiom)
//   - calls whose call-graph closure reaches either of the above in
//     code outside the deterministic set (so a helper package can't
//     smuggle a clock in)
//   - map iterations whose order leaks into output: appending to an
//     outer slice that is never sorted afterwards, or writing directly
//     to an ordered sink (fmt.Fprint*, Write*, print)
//
// Genuinely wall-clock lines — cook-time stats, I/O deadlines — carry a
// //mobweb:nondet-ok directive (line or function form, see
// directives.go), which also stops closure propagation through them.
var NonDet = &Analyzer{
	Name: "nondet",
	Doc: "flag time.Now, unseeded math/rand and map-iteration-order-dependent output in the " +
		"deterministic packages (golden traces, seeded chaos, cache keys); //mobweb:nondet-ok opts out",
	RunProgram: runNonDet,
}

// nondetOK is the directive name shared with the fixture docs.
const nondetOK = "nondet-ok"

func runNonDet(pass *ProgramPass) error {
	prog := pass.Program

	inSet := func(pkgPath string) bool {
		for _, p := range NondetPackages {
			if pkgPath == p {
				return true
			}
		}
		return false
	}

	// Phase 1: per-function direct sources, across every loaded package,
	// with annotated sites excluded so directives cut propagation too.
	direct := make(map[string]map[string]bool)
	for name, node := range prog.Graph.Nodes {
		body := node.Body()
		if body == nil || nodeNondetOK(prog, node) {
			continue
		}
		inspectSkippingFuncLits(body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			desc := nondetSource(node.Pkg.Info, call)
			if desc == "" || prog.Directive(prog.Fset.Position(call.Pos()), nondetOK) {
				return
			}
			if direct[name] == nil {
				direct[name] = make(map[string]bool)
			}
			direct[name][desc] = true
		})
	}
	reaches := reachableClosure(prog.Graph, direct, true)

	// Phase 2: report inside the deterministic packages.
	for _, name := range prog.Graph.SortedNames() {
		node := prog.Graph.Nodes[name]
		if node.Pkg == nil || !inSet(node.Pkg.PkgPath) {
			continue
		}
		body := node.Body()
		if body == nil || nodeNondetOK(prog, node) {
			continue
		}
		inspectSkippingFuncLits(body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if prog.Directive(prog.Fset.Position(call.Pos()), nondetOK) {
				return
			}
			if desc := nondetSource(node.Pkg.Info, call); desc != "" {
				pass.Reportf(call.Pos(),
					"%s in deterministic package %s (feeds golden traces / cache keys); seed it or annotate //mobweb:nondet-ok",
					desc, node.Pkg.Types.Name())
				return
			}
			// Indirect: a call that reaches a source through code outside
			// the deterministic set. Callees inside the set report their
			// own sites; repeating them at every caller is noise.
			callee := calleeFullName(node.Pkg.Info, call)
			calleeNode := prog.Graph.Nodes[callee]
			if callee == "" || calleeNode == nil || (calleeNode.Pkg != nil && inSet(calleeNode.Pkg.PkgPath)) {
				return
			}
			if srcs := sortedKeys(reaches[callee]); len(srcs) > 0 {
				pass.Reportf(call.Pos(),
					"call to %s may reach %s from deterministic package %s; seed/annotate at the source or mark this line //mobweb:nondet-ok",
					shortFunc(callee), strings.Join(srcs, ", "), node.Pkg.Types.Name())
			}
		})
		checkMapOrder(pass, node)
	}
	return nil
}

// nondetSource describes the call when it is itself a determinism
// hazard, or "".
func nondetSource(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until", "After", "AfterFunc", "Tick", "NewTimer", "NewTicker":
			return "wall-clock read time." + fn.Name()
		}
	case "math/rand", "math/rand/v2":
		if fn.Type().(*types.Signature).Recv() != nil {
			// Methods on an explicit *rand.Rand are seeded by whoever
			// constructed it; rand.New(rand.NewSource(seed)) is the
			// idiom the repo's chaos/sim code uses.
			return ""
		}
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return ""
		}
		return "unseeded global randomness rand." + fn.Name()
	}
	return ""
}

// nodeNondetOK reports whether the node — or, for a function literal,
// its enclosing declaration — carries a //mobweb:nondet-ok doc
// directive.
func nodeNondetOK(prog *Program, node *FuncNode) bool {
	if node.Decl != nil {
		return funcDirective(node.Decl, nondetOK)
	}
	// parent$1$2 → walk up to the declaring function.
	name := node.Name
	for {
		i := strings.LastIndex(name, "$")
		if i < 0 {
			return false
		}
		name = name[:i]
		if parent := prog.Graph.Nodes[name]; parent != nil && parent.Decl != nil {
			return funcDirective(parent.Decl, nondetOK)
		}
	}
}

// checkMapOrder flags map ranges whose iteration order leaks into
// ordered output: an append to a slice declared outside the loop with no
// sort call on it later in the function, or a direct write to an ordered
// sink inside the loop. Building other maps, summing, or assigning by
// computed index are all order-insensitive and stay silent.
func checkMapOrder(pass *ProgramPass, node *FuncNode) {
	prog := pass.Program
	body := node.Body()
	info := node.Pkg.Info
	inspectSkippingFuncLits(body, func(n ast.Node) {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return
		}
		t := info.Types[rng.X].Type
		if t == nil {
			return
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return
		}
		if prog.Directive(prog.Fset.Position(rng.Pos()), nondetOK) {
			return
		}
		// Ordered sinks inside the loop body (one report per range).
		sinkReported := false
		inspectSkippingFuncLits(rng.Body, func(n ast.Node) {
			if sinkReported {
				return
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if sink := orderedSink(info, call); sink != "" {
					sinkReported = true
					pass.Reportf(rng.Pos(),
						"map iteration order reaches %s; iterate sorted keys instead", sink)
				}
			}
		})
		// Appends into slices that are never sorted afterwards.
		for _, target := range appendTargets(info, rng) {
			if sortedLater(info, body, target, rng.End()) {
				continue
			}
			pass.Reportf(rng.Pos(),
				"map iteration order reaches %s via append and %s is never sorted afterwards; sort it or iterate sorted keys",
				target.Name(), target.Name())
		}
	})
}

// orderedSink describes a call that emits in sequence order, or "".
// fmt.Sprint* is not a sink — a formatted string used as a map key or
// sorted later is fine; the append/sort rule covers the slice case.
func orderedSink(info *types.Info, call *ast.CallExpr) string {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "print" || id.Name == "println") {
		if _, builtin := info.Uses[id].(*types.Builtin); builtin {
			return "the " + id.Name + " builtin"
		}
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if fn.Pkg().Path() == "fmt" && (strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return "fmt." + fn.Name()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			recv := namedOrPointee(sig.Recv().Type())
			if recv != nil && recv.Obj().Pkg() != nil {
				switch recv.Obj().Pkg().Path() + "." + recv.Obj().Name() {
				case "strings.Builder", "bytes.Buffer", "bufio.Writer":
					return "an ordered writer (" + recv.Obj().Name() + "." + fn.Name() + ")"
				}
			}
		}
	}
	return ""
}

// appendTargets returns the outer-declared slice variables the loop body
// appends to, in source order, deduplicated.
func appendTargets(info *types.Info, rng *ast.RangeStmt) []*types.Var {
	seen := make(map[*types.Var]bool)
	var out []*types.Var
	inspectSkippingFuncLits(rng.Body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || i >= len(as.Lhs) {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "append" {
				continue
			}
			if _, builtin := info.Uses[id].(*types.Builtin); !builtin {
				continue
			}
			lhs, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			v, ok := info.Uses[lhs].(*types.Var)
			if !ok {
				// := inside the loop defines a fresh slice per iteration;
				// order cannot leak out through it.
				continue
			}
			if v.Pos() >= rng.Pos() && v.Pos() <= rng.End() {
				continue
			}
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	})
	return out
}

// sortedLater reports whether a sort-package call mentioning the
// variable appears after pos in the function body — the planner
// cacheKey idiom: collect in map order, then sort.Strings(parts).
func sortedLater(info *types.Info, body *ast.BlockStmt, v *types.Var, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sort" && fn.Pkg().Path() != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && info.Uses[id] == v {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
