// Fixture for the planmut analyzer, rule 1: field writes on the
// protected plan types inside the owner package. The test retargets
// lint.PlanOwnerPackage at this package, whose Plan/generation mirror
// the shapes in mobweb/internal/core.
package planmutowner

type generation struct {
	parity [][]byte
}

type Plan struct {
	m    int
	segs []int
	gens []*generation
}

// NewPlan is constructor-shaped: writes are allowed.
func NewPlan() *Plan {
	p := &Plan{}
	p.m = 3
	p.segs = append(p.segs, 1)
	p.gens = append(p.gens, &generation{})
	return p
}

// ensureParity is the one sanctioned post-construction write (the
// sync.Once-guarded lazy encode in the real package).
func (g *generation) ensureParity() {
	g.parity = [][]byte{{1}}
}

// newDerived exercises the closure rule: a literal inside a constructor
// inherits the constructor's allowance.
func newDerived() *Plan {
	p := &Plan{}
	fill := func() { p.m = 7 }
	fill()
	return p
}

func (p *Plan) Grow() {
	p.m++         // want "write to Plan.m outside a constructor"
	p.segs[0] = 2 // want "write to Plan.segs outside a constructor"
}

func Mutate(p *Plan, g *generation) {
	p.m = 9           // want "write to Plan.m outside a constructor"
	g.parity = nil    // want "write to generation.parity outside a constructor"
	p.gens[0].parity = nil // want "write to generation.parity outside a constructor"
}

// Read-only access is always fine.
func (p *Plan) Read() int { return p.m }
