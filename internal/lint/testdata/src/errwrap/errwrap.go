// Fixture for the errwrap analyzer. The test adds this package to
// lint.ErrwrapPackages, making it a boundary package where fmt.Errorf
// must keep error chains intact.
package errwrap

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

func severedVerb(err error) error {
	return fmt.Errorf("resolve failed: %v", err) // want "without %w"
}

func severedString(err error) error {
	return fmt.Errorf("resolve failed: %s", err.Error()) // want `flattens the chain`
}

// Even with %w elsewhere, smuggling a second error as a string loses it.
func smuggled(err error) error {
	return fmt.Errorf("%w: detail %s", errBase, err.Error()) // want `flattens the chain`
}

func wrapped(err error) error {
	return fmt.Errorf("resolve failed: %w", err) // chain intact: fine
}

func noErrorArgs(n int) error {
	return fmt.Errorf("bad gamma %d", n) // no error argument: fine
}
