// Package nondet is the fixture for the determinism analyzer. Its
// import path is substituted for NondetPackages in the test, making
// every function here "deterministic by contract": wall-clock reads,
// global randomness and map-order leaks must be flagged; the seeded /
// sorted / annotated idioms must stay silent.
package nondet

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"mobweb/internal/lint/testdata/src/nondet/impure"
)

// stamp reads the wall clock directly.
func stamp() int64 {
	return time.Now().UnixNano() // want `wall-clock read time\.Now in deterministic package nondet`
}

// jitter draws from math/rand's package-level (global, unseeded) source.
func jitter() int64 {
	return rand.Int63n(10) // want `unseeded global randomness rand\.Int63n in deterministic package nondet`
}

// keys leaks map iteration order: the slice is never sorted.
func keys(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order reaches out via append and out is never sorted afterwards`
		out = append(out, k)
	}
	return out
}

// dump writes to an ordered sink from inside a map range.
func dump(m map[string]int) {
	for k := range m { // want `map iteration order reaches fmt\.Println`
		fmt.Println(k)
	}
}

// viaHelper reaches the clock through a package outside the
// deterministic set. Reported only when impure's body is loaded too —
// nondet_test.go covers it with the ./... pattern; under this fixture's
// single-package load the callee is opaque and the analyzer stays
// silent rather than guess.
func viaHelper() int64 {
	return impure.Stamp()
}

// seeded is the reproducible idiom the repo's chaos and simulator code
// uses: an explicit source, seed chosen by the caller.
func seeded(seed int64) int64 {
	r := rand.New(rand.NewSource(seed))
	return r.Int63n(10)
}

// sortedKeys collects in map order and then sorts — the planner
// cacheKey idiom. Order cannot leak.
func sortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// invert builds another map: map targets are order-insensitive.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// cookStamp is a genuinely wall-clock statistic, excluded line by line.
func cookStamp() int64 {
	return time.Now().UnixNano() //mobweb:nondet-ok cook-time stat; never part of a golden trace
}

// timing is excluded wholesale by a function-level directive.
//
//mobweb:nondet-ok timing harness; excluded from golden comparisons
func timing() time.Duration {
	start := time.Now()
	return time.Since(start)
}
