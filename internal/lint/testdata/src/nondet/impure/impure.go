// Package impure sits outside the deterministic set on purpose: the
// nondet analyzer must see through calls into it (the "helper package
// smuggles a clock in" case) via the call-graph closure.
package impure

import "time"

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano()
}
