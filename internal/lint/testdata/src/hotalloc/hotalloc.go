// Package hotalloc is the fixture for the hot-path allocation analyzer:
// one function per allocation shape under //mobweb:hot, and the
// zero-alloc idioms (caller-owned buffers, [:0] reuse, cold error
// returns, value literals) that must stay silent.
package hotalloc

import "fmt"

type header struct{ seq int }

var scratchBuf []byte

func sink(v any) { _ = v }

// hotMake allocates a fresh buffer every call.
//
//mobweb:hot fixture
func hotMake(n int) []byte {
	buf := make([]byte, n) // want `make in //mobweb:hot hotMake allocates per call`
	return buf
}

// hotAppend grows a slice that nobody provided capacity for.
//
//mobweb:hot fixture
func hotAppend(v byte) []byte {
	var buf []byte
	buf = append(buf, v) // want `growing append in //mobweb:hot hotAppend`
	return buf
}

// hotFmt formats on the hot path.
//
//mobweb:hot fixture
func hotFmt(seq int) string {
	s := fmt.Sprintf("frame-%d", seq) // want `fmt\.Sprintf in //mobweb:hot hotFmt allocates for every verb`
	return s
}

// hotConv copies the payload through a string.
//
//mobweb:hot fixture
func hotConv(payload []byte) int {
	key := string(payload) // want `string/\[\]byte conversion in //mobweb:hot hotConv copies the data`
	return len(key)
}

// hotBox boxes an int into an interface parameter.
//
//mobweb:hot fixture
func hotBox(seq int) {
	sink(seq) // want `int value boxed into interface parameter in //mobweb:hot hotBox`
}

// hotLiteral allocates a slice literal per call.
//
//mobweb:hot fixture
func hotLiteral(a, b byte) []byte {
	pair := []byte{a, b} // want `slice literal in //mobweb:hot hotLiteral`
	return pair
}

// hotPtrLit heap-allocates through &T{}.
//
//mobweb:hot fixture
func hotPtrLit() *header {
	h := &header{seq: 1} // want `&T\{\} in //mobweb:hot hotPtrLit heap-allocates`
	return h
}

// coldMake is not annotated: allocation outside //mobweb:hot functions
// is none of this analyzer's business.
func coldMake(n int) []byte {
	return make([]byte, n)
}

// hotAppendParam is the AppendMarshal idiom: the caller owns the buffer
// and amortizes its capacity across calls.
//
//mobweb:hot fixture
func hotAppendParam(dst []byte, v byte) []byte {
	dst = append(dst, v)
	return dst
}

// hotReuse re-slices existing storage to zero length before appending.
//
//mobweb:hot fixture
func hotReuse(v byte) {
	scratchBuf = append(scratchBuf[:0], v)
}

// hotReturnFmt wraps an error on the way out: exits are cold by
// construction and exempt.
//
//mobweb:hot fixture
func hotReturnFmt(n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("hotalloc fixture: bad size %d", n)
	}
	return scratchBuf[:0], nil
}

// hotValueLiteral builds a plain struct value, which stays on the stack.
//
//mobweb:hot fixture
func hotValueLiteral(seq int) int {
	h := header{seq: seq}
	return h.seq
}

// hotAllowed takes the reviewed escape hatch for a measured cold path.
//
//mobweb:hot fixture
func hotAllowed(n int) []byte {
	big := make([]byte, n) //lint:allow hotalloc (cold slow path; measured off the frame loop)
	return big
}
