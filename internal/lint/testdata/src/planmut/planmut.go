// Fixture for the planmut analyzer, rule 2: writes through the shared
// slices handed out by Plan.Segments/AccrualSegments/CookedPayload.
package planmut

import "mobweb/internal/core"

func mutateShared(p *core.Plan) {
	segs := p.Segments()
	segs[0].Score = 0.5                  // want "store through a slice shared"
	segs[1] = core.UnitSegment{}         // want "store through a slice shared"
	sub := segs[1:]                      // re-slicing keeps the taint
	sub[0].Length = 9                    // want "store through a slice shared"
	_ = append(segs, core.UnitSegment{}) // want "append to a slice shared"
	p.Segments()[0].Score = 1            // want "store through a slice shared"

	buf, _ := p.CookedPayload(0)
	buf[0] = 1                 // want "store through a slice shared"
	buf[0]++                   // want "store through a slice shared"
	copy(buf, []byte("x"))     // want "copy into a slice shared"

	acc := p.AccrualSegments()
	for i := range acc {
		acc[i].Score = 0 // want "store through a slice shared"
	}
}

func allowedCopies(p *core.Plan) {
	own := append([]core.UnitSegment(nil), p.Segments()...)
	own[0].Score = 1 // fresh backing array: fine

	buf, _ := p.CookedPayload(0)
	cp := make([]byte, len(buf))
	copy(cp, buf) // shared slice as the SOURCE: fine
	cp[0] = 1

	buf = cp  // rebinding the local clears the taint
	buf[0] = 2

	total := 0.0
	for _, seg := range p.AccrualSegments() {
		total += seg.Score // reads are fine
	}
	_ = total
}
