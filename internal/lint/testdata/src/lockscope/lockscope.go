// Fixture for the lockscope analyzer: critical sections spanning
// channel operations, network I/O, plan builds, waits and sleeps.
package lockscope

import (
	"net"
	"sync"
	"time"

	"mobweb/internal/core"
)

type server struct {
	mu    sync.Mutex
	conns map[net.Conn]bool
	ch    chan int
	plans map[string]*core.Plan
}

// The Server.Close bug this analyzer caught in the real tree: closing
// connections while holding the tracking mutex.
func (s *server) closeAllBad() {
	s.mu.Lock()
	for c := range s.conns {
		c.Close() // want "held across network I/O"
	}
	s.mu.Unlock()
}

func (s *server) sendBad(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v // want "held across a channel send"
}

func (s *server) recvBad() int {
	s.mu.Lock()
	v := <-s.ch // want "held across a channel receive"
	s.mu.Unlock()
	return v
}

func (s *server) buildBad() {
	s.mu.Lock()
	p, _ := core.NewPlanWithScores(nil, nil, core.Config{}) // want "held across a plan build"
	s.plans["x"] = p
	s.mu.Unlock()
}

func (s *server) sleepBad() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "held across time.Sleep"
	s.mu.Unlock()
}

func (s *server) waitBad(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want `held across sync\.WaitGroup\.Wait`
}

func (s *server) selectBad() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "held across a select"
	case v := <-s.ch:
		_ = v
	default:
	}
}

func (s *server) rangeBad() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for v := range s.ch { // want "held across a channel range"
		_ = v
	}
}

// The planner's discipline: snapshot under the lock, build after,
// re-lock to publish. Nothing here may be flagged.
func (s *server) buildGood() {
	s.mu.Lock()
	_, cached := s.plans["x"]
	s.mu.Unlock()
	if cached {
		return
	}
	p, _ := core.NewPlanWithScores(nil, nil, core.Config{})
	s.mu.Lock()
	s.plans["x"] = p
	s.mu.Unlock()
}

// An unlock on an early-return branch does not release the fall-through
// path: line A is clean, line B is still under the lock.
func (s *server) earlyReturnStillLocked(done bool) {
	s.mu.Lock()
	if done {
		s.mu.Unlock()
		s.ch <- 1 // line A: unlocked on this path
		return
	}
	s.ch <- 2 // want "held across a channel send"
	s.mu.Unlock()
}

// A goroutine body does not run under the spawner's lock.
func (s *server) goroutineGood() {
	s.mu.Lock()
	go func() {
		s.ch <- 1
	}()
	s.mu.Unlock()
}

// Channel ops after every path released the lock are fine.
func (s *server) unlockThenSendGood(v int) {
	s.mu.Lock()
	s.plans = nil
	s.mu.Unlock()
	s.ch <- v
}
