// Package lockorder is the fixture for the acquisition-order analyzer:
// an AB/BA cycle witnessed from both sides, an indirect cycle through a
// callee, a self-deadlock, and the disciplined patterns that must stay
// silent (consistent ordering, goroutine-spawned acquisitions).
package lockorder

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
	muC sync.Mutex
	muD sync.Mutex
	muE sync.Mutex
	muF sync.Mutex
	muG sync.Mutex
)

// abThenBa and baThenAb acquire in opposite orders: the classic
// deadlock, reported at both witnessing edges.
func abThenBa() {
	muA.Lock()
	muB.Lock() // want `lock order cycle: lockorder\.muB acquired while lockorder\.muA is held .*cycle: lockorder\.muA → lockorder\.muB → lockorder\.muA`
	muB.Unlock()
	muA.Unlock()
}

func baThenAb() {
	muB.Lock()
	muA.Lock() // want `lock order cycle: lockorder\.muA acquired while lockorder\.muB is held`
	muA.Unlock()
	muB.Unlock()
}

// cThenD closes its half of the cycle indirectly: the call-graph closure
// knows lockD acquires muD.
func cThenD() {
	muC.Lock()
	lockD() // want `lock order cycle: lockorder\.muD acquired via call to lockorder\.lockD while lockorder\.muC is held`
	muC.Unlock()
}

func lockD() {
	muD.Lock()
	muD.Unlock()
}

func dThenC() {
	muD.Lock()
	muC.Lock() // want `lock order cycle: lockorder\.muC acquired while lockorder\.muD is held`
	muC.Unlock()
	muD.Unlock()
}

// reLock acquires a class it already holds through the same spelling: a
// certain self-deadlock, no cycle needed.
func reLock() {
	muG.Lock()
	muG.Lock() // want `muG locked again while already held \(self-deadlock`
	muG.Unlock()
	muG.Unlock()
}

// outerInner1/2 follow one consistent order on every path — the
// documented discipline. No cycle, no report.
func outerInner1() {
	muE.Lock()
	muF.Lock()
	muF.Unlock()
	muE.Unlock()
}

func outerInner2() {
	muE.Lock()
	defer muE.Unlock()
	muF.Lock()
	defer muF.Unlock()
}

// fThenSpawnE would close an E/F cycle if goroutine spawns counted as
// acquisitions of the spawner — they must not: the child's locks are
// taken on its own stack, after the parent may well have released.
func fThenSpawnE() {
	muF.Lock()
	go lockE()
	muF.Unlock()
}

func lockE() {
	muE.Lock()
	muE.Unlock()
}
