// Package lockdedup reproduces the overlap between lockscope and
// lockorder: a critical section that both sleeps (lockscope's
// held-across-blocker finding) and closes a lock-order cycle. The cycle
// is the root cause; lint.Run must keep the lockorder report and drop
// the lockscope symptom inside the cycle's critical section. The
// lockscope finding outside any cycle must survive.
package lockdedup

import (
	"sync"
	"time"
)

var (
	muA sync.Mutex
	muB sync.Mutex
	muLone sync.Mutex
)

// abWithSleep sleeps inside the A→B half of the cycle: lockscope's
// finding on the Sleep line is subsumed by the cycle report.
func abWithSleep() {
	muA.Lock()
	time.Sleep(time.Millisecond)
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}

func ba() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}

// sleepLone holds a cycle-free mutex across a sleep: a plain lockscope
// finding that dedup must NOT eat.
func sleepLone() {
	muLone.Lock()
	time.Sleep(time.Millisecond)
	muLone.Unlock()
}
