// Package goroleak is the fixture for the goroutine-leak analyzer: the
// two leaked-reader shapes (unconditional loop without exit, bare
// unbuffered send in a loop) and the shutdown patterns that must stay
// silent.
package goroleak

func step()     {}
func use(v int) {}

// leakyLit spawns a literal that can never stop: the redial-loop leak.
func leakyLit() {
	go func() {
		for { // want "goroutine loops forever with no exit path"
			step()
		}
	}()
}

// leakyDecl spawns a same-package declaration; the analyzer follows the
// go statement into its body.
func leakyDecl() {
	go run()
}

func run() {
	for { // want "goroutine loops forever with no exit path"
		step()
	}
}

// leakyNestedBreak is the historic transport reader bug: the break binds
// to the select, not the loop, so the loop still has no exit.
func leakyNestedBreak(done chan struct{}) {
	go func() {
		for { // want "goroutine loops forever with no exit path"
			select {
			case <-done:
				break
			default:
				step()
			}
		}
	}()
}

// leakySender pushes on a channel this package makes unbuffered, with no
// select: when the consumer stops after the first value, the goroutine
// blocks forever.
func leakySender() int {
	results := make(chan int)
	go func() {
		for i := 0; i < 1000; i++ {
			results <- i // want "send on unbuffered channel results inside a goroutine loop with no select"
		}
	}()
	return <-results
}

// cleanWorker is the fix the analyzer asks for: every iteration can
// leave via the done case, and the send is select-guarded.
func cleanWorker(done chan struct{}, out chan int) {
	go func() {
		for {
			select {
			case <-done:
				return
			case out <- 1:
			}
		}
	}()
}

// cleanRange exits when the channel closes — the idiomatic pipeline
// stage shape (textproc's five stages).
func cleanRange(ch chan int) {
	go func() {
		for v := range ch {
			use(v)
		}
	}()
}

// cleanLabeledBreak exits through a labeled break from inside the
// select: the correct spelling of what leakyNestedBreak got wrong.
func cleanLabeledBreak(done chan struct{}) {
	go func() {
	pump:
		for {
			select {
			case <-done:
				break pump
			default:
				step()
			}
		}
	}()
}

// cleanBuffered sends on a channel made with capacity: the send cannot
// pin the goroutine past the buffer, and sizing that buffer is the
// caller's stated intent.
func cleanBuffered() {
	results := make(chan int, 8)
	go func() {
		for i := 0; i < 8; i++ {
			results <- i
		}
	}()
}

// allowedPump documents a process-lifetime goroutine: the suppression
// is the reviewed way to keep one.
func allowedPump() {
	go func() {
		for { //lint:allow goroleak (process-lifetime pump by design; reviewed)
			step()
		}
	}()
}
