// Fixture for the framemut analyzer: writes through the shared,
// immutable slices handed out by the frame cache and the planner's
// frame-serving handle.
package framemut

import (
	"mobweb/internal/framecache"
	"mobweb/internal/planner"
)

func mutateShared(c *framecache.Cache, r *planner.Resolved) {
	frame, ok := c.Get(framecache.Key{Plan: "p"})
	if ok {
		frame[0] = 1 // want "store through a slice shared"
	}
	frame[1]++                    // want "store through a slice shared"
	copy(frame, []byte("x"))      // want "copy into a slice shared"
	_ = append(frame, 0xff)       // want "append to a slice shared"
	sub := frame[4:]              // re-slicing keeps the taint
	sub[0] = 9                    // want "store through a slice shared"

	cooked, _ := c.GetOrCook(framecache.Key{Plan: "p"}, nil)
	cooked[2] ^= 0xff // want "store through a slice shared"

	wire, _ := r.Frame(0)
	wire[0] = 0 // want "store through a slice shared"
}

func allowedCopies(c *framecache.Cache, r *planner.Resolved) {
	frame, _ := c.GetOrCook(framecache.Key{Plan: "p"}, nil)
	private := append([]byte(nil), frame...) // fresh backing array: fine
	private[0] = 1

	cp := make([]byte, len(frame))
	copy(cp, frame) // shared slice as the SOURCE: fine
	cp[0] = 2

	frame = cp // rebinding the local clears the taint
	frame[0] = 3

	wire, _ := r.Frame(0)
	total := 0
	for _, b := range wire {
		total += int(b) // reads are fine
	}
	_ = total
}
