// Fixture for the gfarith analyzer: this package imports gf256, so its
// byte values are presumed GF(2^8) field elements and integer
// arithmetic on them is flagged; int-typed index arithmetic is not.
package gfarith

import "mobweb/internal/gf256"

func badParity(row, src []byte, c byte) {
	for i := range row {
		row[i] = row[i] + gf256.Mul(c, src[i]) // want "use gf256.Add"
	}
	row[0] += src[0] // want "use gf256.Add"
	x := c * 2       // want "use gf256.Mul"
	y := c - 1       // want "use gf256.Sub"
	z := c / 3       // want "use gf256.Div"
	_ = c % 5        // want "use gf256.Add/Mul/Div"
	x *= y           // want "use gf256.Mul"
	_, _, _ = x, y, z
}

func goodFieldArith(row, src []byte, c byte) {
	for i := range row {
		row[i] = gf256.Add(row[i], gf256.Mul(c, src[i]))
		row[i] ^= gf256.Mul(c, src[i]) // XOR is field addition: fine
	}
	// Index and length arithmetic is int-typed and never flagged.
	for i := 0; i < len(row)-1; i++ {
		_ = row[i+1]
	}
	n := len(row)*2 + 1
	_ = n
	// Suppressed: a deliberate wire-format increment, not a field op.
	row[0] += 1 //lint:allow gfarith (wire header increment, not a field element)
}
