// Fixture for the gfarith analyzer: this package imports gf256, so its
// byte values are presumed GF(2^8) field elements and integer
// arithmetic on them is flagged; int-typed index arithmetic is not.
package gfarith

import "mobweb/internal/gf256"

func badParity(row, src []byte, c byte) {
	for i := range row {
		row[i] = row[i] + gf256.Mul(c, src[i]) // want "use gf256.Add"
	}
	row[0] += src[0] // want "use gf256.Add"
	x := c * 2       // want "use gf256.Mul"
	y := c - 1       // want "use gf256.Sub"
	z := c / 3       // want "use gf256.Div"
	_ = c % 5        // want "use gf256.Add/Mul/Div"
	x *= y           // want "use gf256.Mul"
	_, _, _ = x, y, z
}

func badDoubling(c byte, row []byte) {
	d := c << 1          // want "unreduced doubling"
	c <<= 2              // want "unreduced doubling"
	row[0] = row[0] << 1 // want "unreduced doubling"
	_ = d
}

func goodFieldArith(row, src []byte, c byte) {
	for i := range row {
		row[i] = gf256.Add(row[i], gf256.Mul(c, src[i]))
		row[i] ^= gf256.Mul(c, src[i]) // XOR is field addition: fine
	}
	// Index and length arithmetic is int-typed and never flagged.
	for i := 0; i < len(row)-1; i++ {
		_ = row[i+1]
	}
	n := len(row)*2 + 1
	_ = n
	// Suppressed: a deliberate wire-format increment, not a field op.
	row[0] += 1 //lint:allow gfarith (wire header increment, not a field element)
}

// goodKernelIdiom mirrors the vectorized kernel style: table lookups for
// the field products and machine arithmetic confined to wider integer
// lanes (uint64 SWAR words, int indices). None of it is flagged — only
// byte-typed operands are presumed field elements.
func goodKernelIdiom(dst, src []byte, mul *[256]byte) {
	// Table lookup replaces multiplication; XOR is field addition.
	for i := range dst {
		dst[i] ^= mul[src[i]]
	}
	// Nibble split: shifts on the int-typed index, not on a byte value.
	for i := range src {
		lo := int(src[i]) & 0x0F
		hi := int(src[i]) >> 4
		_ = lo<<4 | hi
	}
	// SWAR lane packing on uint64 words is plain machine arithmetic.
	var w uint64
	for k := 0; k < 8 && k < len(src); k++ {
		w |= uint64(src[k]) << (8 * k)
		w = w<<1 | w>>63
	}
	_ = w
}
