package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockscopeBlockers are calls that block (or can block) for unbounded
// time; holding a mutex across one is the singleflight-deadlock shape
// the planner avoids by dropping p.mu around core.NewPlan. Method names
// use types.Func.FullName form.
var lockscopeBlockers = map[string]string{
	"mobweb/internal/core.NewPlan":                 "a plan build (ranking + packetization)",
	"mobweb/internal/core.NewPlanWithScores":       "a plan build (ranking + packetization)",
	"(*mobweb/internal/planner.Planner).Resolve":   "a plan resolution (may build)",
	"(*sync.WaitGroup).Wait":                       "sync.WaitGroup.Wait",
	"time.Sleep":                                   "time.Sleep",
	"(*golang.org/x/sync/singleflight.Group).Do":   "a singleflight build",
	"(*mobweb/internal/transport.Client).Fetch":    "a network fetch",
	"(*mobweb/internal/transport.Client).Prefetch": "a network prefetch",
}

// LockScope flags sync.Mutex / sync.RWMutex critical sections that span
// channel operations, network I/O (any net-package call), plan builds,
// WaitGroup waits, or sleeps.
//
// The walk is block-structured rather than a full CFG: after x.Lock(),
// statements are scanned in source order; x.Unlock() releases; an
// unlock on an early-return path (if cond { x.Unlock(); return }) does
// NOT release the fall-through path; `defer x.Unlock()` holds the lock
// to function end. Function literals are analyzed as their own
// functions (a goroutine body does not run under the spawner's lock).
// The approximation errs toward silence: a release on any falling-
// through branch counts as released, so findings are high-confidence.
var LockScope = &Analyzer{
	Name: "lockscope",
	Doc: "flag mutexes held across channel ops, network I/O, plan builds, WaitGroup waits or sleeps " +
		"(the deadlock/convoy shape the planner's drop-lock-around-build discipline exists to prevent)",
	Run: runLockScope,
}

func runLockScope(pass *Pass) error {
	// Collect every function body, including literals, each analyzed
	// independently.
	var bodies []*ast.BlockStmt
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				bodies = append(bodies, fd.Body)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && lit.Body != nil {
				bodies = append(bodies, lit.Body)
			}
			return true
		})
	}
	for _, body := range bodies {
		for _, recv := range lockReceivers(pass, body) {
			w := &lockWalker{pass: pass, recv: recv}
			w.walkList(body.List, false)
		}
	}
	return nil
}

// lockReceivers returns the distinct receiver spellings (types.ExprString)
// locked anywhere in the body, excluding nested function literals.
func lockReceivers(pass *Pass, body *ast.BlockStmt) []string {
	seen := make(map[string]bool)
	var out []string
	inspectSkippingFuncLits(body, func(n ast.Node) {
		if recv, kind := mutexCall(pass, n); kind == "Lock" || kind == "RLock" {
			if !seen[recv] {
				seen[recv] = true
				out = append(out, recv)
			}
		}
	})
	return out
}

// mutexCall classifies n as a sync mutex method call, returning the
// receiver spelling and the method name ("Lock", "Unlock", "RLock",
// "RUnlock", "TryLock"...), or ("", "").
func mutexCall(pass *Pass, n ast.Node) (recv, method string) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	named := namedOrPointee(pass.Info.Types[sel.X].Type)
	if named == nil || (named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex") {
		return "", ""
	}
	return types.ExprString(sel.X), fn.Name()
}

// lockWalker tracks one receiver's lock state through one function body.
type lockWalker struct {
	pass *Pass
	recv string
	// deferred means a `defer recv.Unlock()` is pending: the lock is
	// held to function end regardless of explicit unlocks.
	deferred bool
}

// walkList scans a statement list, returning the lock state after it.
func (w *lockWalker) walkList(stmts []ast.Stmt, locked bool) bool {
	for _, st := range stmts {
		locked = w.walkStmt(st, locked)
	}
	return locked
}

func (w *lockWalker) walkStmt(st ast.Stmt, locked bool) bool {
	switch s := st.(type) {
	case *ast.ExprStmt:
		if recv, method := mutexCall(w.pass, s.X); recv == w.recv {
			switch method {
			case "Lock", "RLock":
				return true
			case "Unlock", "RUnlock":
				if w.deferred {
					return locked
				}
				return false
			}
		}
		w.checkExpr(s.X, locked)
		return locked
	case *ast.DeferStmt:
		if w.deferContainsUnlock(s) {
			if locked {
				w.deferred = true
			}
			return locked
		}
		// Argument expressions evaluate now; the call itself runs later.
		for _, arg := range s.Call.Args {
			w.checkExpr(arg, locked)
		}
		return locked
	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			w.checkExpr(arg, locked)
		}
		return locked
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.checkExpr(e, locked)
		}
		for _, e := range s.Lhs {
			w.checkExpr(e, locked)
		}
		return locked
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.checkExpr(e, locked)
		}
		return locked
	case *ast.SendStmt:
		if locked {
			w.report(s.Pos(), "a channel send")
		}
		w.checkExpr(s.Value, locked)
		return locked
	case *ast.SelectStmt:
		if locked {
			w.report(s.Pos(), "a select")
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				w.walkList(cc.Body, locked)
			}
		}
		return locked
	case *ast.IfStmt:
		if s.Init != nil {
			locked = w.walkStmt(s.Init, locked)
		}
		w.checkExpr(s.Cond, locked)
		bodyLocked := w.walkList(s.Body.List, locked)
		elseLocked := locked
		elseFalls := true
		if s.Else != nil {
			elseLocked = w.walkStmt(s.Else, locked)
			elseFalls = fallsThrough(s.Else)
		}
		return mergeBranches(locked,
			branch{bodyLocked, fallsThroughList(s.Body.List)},
			branch{elseLocked, elseFalls})
	case *ast.ForStmt:
		if s.Init != nil {
			locked = w.walkStmt(s.Init, locked)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond, locked)
		}
		w.walkList(s.Body.List, locked)
		return locked
	case *ast.RangeStmt:
		if t := w.pass.Info.Types[s.X].Type; t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan && locked {
				w.report(s.Pos(), "a channel range")
			}
		}
		w.checkExpr(s.X, locked)
		w.walkList(s.Body.List, locked)
		return locked
	case *ast.SwitchStmt:
		if s.Init != nil {
			locked = w.walkStmt(s.Init, locked)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag, locked)
		}
		return w.walkCases(s.Body, locked)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			locked = w.walkStmt(s.Init, locked)
		}
		return w.walkCases(s.Body, locked)
	case *ast.BlockStmt:
		return w.walkList(s.List, locked)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, locked)
	case *ast.IncDecStmt:
		w.checkExpr(s.X, locked)
		return locked
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.checkExpr(v, locked)
					}
				}
			}
		}
		return locked
	default:
		return locked
	}
}

func (w *lockWalker) walkCases(body *ast.BlockStmt, locked bool) bool {
	branches := make([]branch, 0, len(body.List))
	for _, clause := range body.List {
		if cc, ok := clause.(*ast.CaseClause); ok {
			after := w.walkList(cc.Body, locked)
			branches = append(branches, branch{after, fallsThroughList(cc.Body)})
		}
	}
	return mergeBranches(locked, branches...)
}

type branch struct {
	locked bool
	falls  bool
}

// mergeBranches computes the lock state after a conditional: if any
// falling-through branch released the lock, treat the merge as released
// (suppresses findings rather than inventing them); if no branch falls
// through, keep the entry state.
func mergeBranches(entry bool, branches ...branch) bool {
	merged := entry
	anyFalls := false
	for _, b := range branches {
		if b.falls {
			anyFalls = true
			merged = merged && b.locked
		}
	}
	if !anyFalls {
		return entry
	}
	return merged
}

// fallsThrough reports whether control can flow past the statement.
func fallsThrough(st ast.Stmt) bool {
	switch s := st.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return false
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return false
			}
		}
		return true
	case *ast.BlockStmt:
		return fallsThroughList(s.List)
	case *ast.IfStmt:
		if s.Else == nil {
			return true
		}
		return fallsThroughList(s.Body.List) || fallsThrough(s.Else)
	default:
		return true
	}
}

func fallsThroughList(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return true
	}
	return fallsThrough(stmts[len(stmts)-1])
}

// deferContainsUnlock reports whether a defer releases w.recv, either
// directly (defer mu.Unlock()) or inside a deferred closure.
func (w *lockWalker) deferContainsUnlock(d *ast.DeferStmt) bool {
	if recv, method := mutexCall(w.pass, d.Call); recv == w.recv && (method == "Unlock" || method == "RUnlock") {
		return true
	}
	if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
		found := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if recv, method := mutexCall(w.pass, n); recv == w.recv && (method == "Unlock" || method == "RUnlock") {
				found = true
			}
			return !found
		})
		return found
	}
	return false
}

// checkExpr reports blocking operations inside an expression evaluated
// while the lock is held. Function literals are skipped: their bodies
// run when called, under whatever lock regime applies then.
func (w *lockWalker) checkExpr(e ast.Expr, locked bool) {
	if !locked || e == nil {
		return
	}
	inspectSkippingFuncLits(e, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				w.report(x.Pos(), "a channel receive")
			}
		case *ast.CallExpr:
			if desc := w.blockingCall(x); desc != "" {
				w.report(x.Pos(), desc)
			}
		}
	})
}

// blockingCall describes a call considered blocking, or "".
func (w *lockWalker) blockingCall(call *ast.CallExpr) string {
	fn := calleeFunc(w.pass.Info, call)
	if fn == nil {
		return ""
	}
	if desc, ok := lockscopeBlockers[fn.FullName()]; ok {
		return desc
	}
	// Any call into package net: Conn/Listener methods (Accept, Read,
	// Write, Close, ...) and dial functions all touch the network.
	if fn.Pkg() != nil && fn.Pkg().Path() == "net" {
		return "network I/O (net." + fn.Name() + ")"
	}
	return ""
}

func (w *lockWalker) report(pos token.Pos, what string) {
	w.pass.Reportf(pos, "mutex %s held across %s; release the lock first (planner-style: drop the lock around builds and I/O)", w.recv, what)
}

// inspectSkippingFuncLits is ast.Inspect minus function-literal bodies.
func inspectSkippingFuncLits(root ast.Node, visit func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
