package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Configuration for PlanMut. Vars (not consts) so fixture tests can
// retarget them at testdata packages.
var (
	// PlanOwnerPackage is the only package allowed to write fields of the
	// protected plan types, and then only inside constructor-shaped
	// functions.
	PlanOwnerPackage = "mobweb/internal/core"
	// planOwnerTypes are the struct types whose fields are frozen after
	// construction. generation is unexported but lives behind every
	// cached plan, so it is covered too.
	planOwnerTypes = map[string]bool{"Plan": true, "generation": true}
	// planConstructorAllowed marks owner-package functions that may write
	// plan fields: constructors, the mutex-guarded lazy parity row
	// encode, and the equally mutex-guarded lazy fountain encoder
	// memoization (the sanctioned post-construction writes).
	planConstructorAllowed = func(name string) bool {
		return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") ||
			name == "ensureParity" || name == "ensureParityRow" ||
			name == "fountainEncoder"
	}
	// SharedPlanAccessors return slices that alias cache-owned plan
	// state. Their results must be treated as read-only; writing through
	// them corrupts the plan for every goroutine sharing it.
	SharedPlanAccessors = map[string]bool{
		"(*mobweb/internal/core.Plan).Segments":        true,
		"(*mobweb/internal/core.Plan).AccrualSegments": true,
		"(*mobweb/internal/core.Plan).CookedPayload":   true,
	}
)

// PlanMut enforces the planner cache's immutability contract. Cached
// *core.Plan values are shared across goroutines by the planner LRU; the
// paper's FT guarantee ("any M intact cooked packets reconstruct the
// document", §4) silently breaks if a plan mutates after construction.
//
// Two rules:
//
//  1. Inside the owner package, fields of Plan/generation may only be
//     assigned in constructor-shaped functions (New*, new*) and in
//     ensureParity (the sync.Once-guarded lazy encode).
//  2. Everywhere, slices obtained from the shared accessors (Segments,
//     AccrualSegments, CookedPayload) must not be written through:
//     element/field stores, append with such a slice as destination,
//     and copy into it are all flagged. Re-slicing keeps the taint
//     (sub[0] = x still writes the plan); append([]T(nil), s...) and
//     other fresh-destination copies clear it.
var PlanMut = &Analyzer{
	Name: "planmut",
	Doc: "flag writes to cache-owned plan state: core.Plan/generation field stores outside constructors, " +
		"and stores through the shared slices returned by Plan.Segments/AccrualSegments/CookedPayload",
	Run: runPlanMut,
}

func runPlanMut(pass *Pass) error {
	inOwner := pass.Pkg.Path() == PlanOwnerPackage
	forEachFunc(pass.Files, func(name string, body *ast.BlockStmt) {
		if inOwner {
			checkOwnerWrites(pass, name, body)
		}
		checkSharedSliceWrites(pass, body, SharedPlanAccessors, "a cached plan")
	})
	return nil
}

// checkOwnerWrites flags field stores on protected types outside
// constructor-shaped functions (rule 1). Closures inherit the enclosing
// declaration's name via forEachFunc, so the Once.Do literal inside
// ensureParity stays allowed.
func checkOwnerWrites(pass *Pass, funcName string, body *ast.BlockStmt) {
	if planConstructorAllowed(funcName) {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				reportProtectedFieldWrite(pass, lhs, funcName)
			}
		case *ast.IncDecStmt:
			reportProtectedFieldWrite(pass, st.X, funcName)
		}
		return true
	})
}

// reportProtectedFieldWrite walks an assignment target down to its base
// selector and reports it when the selector's receiver is a protected
// plan type. p.m = 3, p.segments[i] = s and g.parity = rows all reduce
// to a selector on Plan/generation.
func reportProtectedFieldWrite(pass *Pass, lhs ast.Expr, funcName string) {
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			lhs = e.X
			continue
		case *ast.SliceExpr:
			lhs = e.X
			continue
		case *ast.SelectorExpr:
			named := namedOrPointee(pass.Info.Types[e.X].Type)
			if named != nil && named.Obj().Pkg() != nil &&
				named.Obj().Pkg().Path() == PlanOwnerPackage && planOwnerTypes[named.Obj().Name()] {
				pass.Reportf(e.Pos(), "write to %s.%s outside a constructor (in %s): plans are immutable once cached",
					named.Obj().Name(), e.Sel.Name, funcName)
				return
			}
			lhs = e.X
			continue
		default:
			return
		}
	}
}

// checkSharedSliceWrites performs a source-order taint walk of one
// function body. Locals assigned from a shared accessor — or
// re-slices/aliases of one — are tainted; stores through tainted values
// are reported; assigning a fresh value to the local clears the taint.
// The accessor set and the owner noun ("a cached plan", "the frame
// cache") are parameters, so planmut and framemut share the machinery.
func checkSharedSliceWrites(pass *Pass, body *ast.BlockStmt, accessors map[string]bool, owner string) {
	tainted := make(map[types.Object]bool)

	taintSource := func(rhs ast.Expr) bool {
		switch e := ast.Unparen(rhs).(type) {
		case *ast.CallExpr:
			return accessors[calleeFullName(pass.Info, e)]
		case *ast.Ident:
			return tainted[pass.Info.Uses[e]]
		case *ast.SliceExpr:
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
				return tainted[pass.Info.Uses[id]]
			}
			if call, ok := ast.Unparen(e.X).(*ast.CallExpr); ok {
				return accessors[calleeFullName(pass.Info, call)]
			}
		}
		return false
	}

	// taintedBase reports whether a store target's base slice is shared:
	// either a tainted local (through any indexing/slicing/field chain)
	// or a direct accessor call like p.Segments()[0].
	var taintedBase func(e ast.Expr) bool
	taintedBase = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			return tainted[pass.Info.Uses[e]]
		case *ast.IndexExpr:
			return taintedBase(e.X)
		case *ast.SliceExpr:
			return taintedBase(e.X)
		case *ast.SelectorExpr:
			// A field write THROUGH an indexed tainted slice
			// (segs[i].Score = x). A plain selector base (x.f) is the
			// owner-package rule's business, not taint's.
			return taintedBase(e.X)
		case *ast.CallExpr:
			return accessors[calleeFullName(pass.Info, e)]
		}
		return false
	}

	// storeTarget reports whether lhs writes through a tainted slice:
	// it must pass at least one IndexExpr on the way down (writing
	// segs[0] or segs[0].Score mutates shared backing memory; rebinding
	// the variable itself does not).
	storeThroughShared := func(lhs ast.Expr) bool {
		for {
			switch e := ast.Unparen(lhs).(type) {
			case *ast.IndexExpr:
				return taintedBase(e.X)
			case *ast.SelectorExpr:
				lhs = e.X
			case *ast.SliceExpr:
				lhs = e.X
			default:
				return false
			}
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if storeThroughShared(lhs) {
					pass.Reportf(lhs.Pos(), "store through a slice shared with %s; copy it before modifying", owner)
				}
			}
			// Propagate / clear taint after checking stores. Only the
			// single-RHS forms matter for accessor results (CookedPayload
			// returns (slice, error): value 0 is the slice).
			if len(st.Rhs) == 1 {
				src := taintSource(st.Rhs[0])
				if id, ok := ast.Unparen(st.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
					obj := pass.Info.Defs[id]
					if obj == nil {
						obj = pass.Info.Uses[id]
					}
					if obj != nil {
						tainted[obj] = src
					}
				}
			}
		case *ast.IncDecStmt:
			if storeThroughShared(st.X) {
				pass.Reportf(st.X.Pos(), "store through a slice shared with %s; copy it before modifying", owner)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok {
				switch id.Name {
				case "append":
					if len(st.Args) > 0 && taintSource(st.Args[0]) {
						pass.Reportf(st.Args[0].Pos(), "append to a slice shared with %s may write its backing array; copy it first (append([]T(nil), s...))", owner)
					}
				case "copy":
					if len(st.Args) == 2 && taintSource(st.Args[0]) {
						pass.Reportf(st.Args[0].Pos(), "copy into a slice shared with %s; copy FROM it into a fresh slice instead", owner)
					}
				}
			}
		}
		return true
	})
}
