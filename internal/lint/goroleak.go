package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak flags goroutines with no guaranteed exit path — the redial /
// resume and chaos-injector code is where these bite: a leaked reader
// per reconnect is invisible in tests and fatal in a fleet. Two shapes
// are reported, both modeled on the historic transport reader leak
// (server.go's handle() now documents the fix):
//
//  1. A goroutine whose body contains an unconditional `for { ... }`
//     loop with no way out: no return, no break binding to that loop
//     (a break inside a nested select does NOT exit the loop — the
//     exact misreading behind the historic leak), no goto, no terminal
//     call. Loops over channels (`for v := range ch`) are exempt:
//     closing the channel is their exit path.
//
//  2. A plain (non-select) send inside a loop in a goroutine, on a
//     channel the package demonstrably makes unbuffered: when the
//     receiver stops receiving — client gone, error return upstream —
//     the send blocks forever and pins the goroutine. Sends wrapped in
//     a select (with a done/cancel case) and sends on channels that are
//     buffered or of unknown origin are silent.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc: "flag goroutines without an exit path: unconditional loops that cannot terminate, and " +
		"bare sends on unbuffered channels inside goroutine loops (the leaked-reader shape)",
	Run: runGoroLeak,
}

func runGoroLeak(pass *Pass) error {
	// Map function objects to their declarations so `go s.run()` can be
	// followed into a same-package body.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}

	reported := make(map[token.Pos]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if body := goroutineBody(pass, decls, g); body != nil {
				checkGoroutineBody(pass, body, reported)
			}
			return true
		})
	}
	return nil
}

// goroutineBody resolves the body a go statement spawns: a literal's
// body, or the declaration of a same-package function. Cross-package
// spawns return nil — that body is analyzed when its own package is.
func goroutineBody(pass *Pass, decls map[*types.Func]*ast.FuncDecl, g *ast.GoStmt) *ast.BlockStmt {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if fn := calleeFunc(pass.Info, g.Call); fn != nil {
		if fd, ok := decls[fn]; ok {
			return fd.Body
		}
	}
	return nil
}

func checkGoroutineBody(pass *Pass, body *ast.BlockStmt, reported map[token.Pos]bool) {
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}

	// Shape 1: unconditional loops with no exit. Labels are tracked so
	// `break outer` counts as an exit of the labeled loop.
	var labels []string
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch s := n.(type) {
		case *ast.FuncLit:
			// A nested literal is its own goroutine only if spawned by a
			// nested GoStmt, which the file-level inspect finds itself.
			return
		case *ast.LabeledStmt:
			labels = append(labels, s.Label.Name)
			walk(s.Stmt)
			labels = labels[:len(labels)-1]
			return
		case *ast.ForStmt:
			if s.Cond == nil {
				label := ""
				if len(labels) > 0 {
					label = labels[len(labels)-1]
				}
				if !loopExits(pass.Info, s.Body, label) {
					report(s.Pos(), "goroutine loops forever with no exit path (no return, break, or terminal call); add a done/context case so shutdown can reach it")
				}
			}
		}
		if n != nil {
			walkChildren(n, walk)
		}
	}
	for _, st := range body.List {
		walk(st)
	}

	// Shape 2: bare unbuffered sends inside loops.
	checkBareSends(pass, body, false, report)
}

// checkBareSends walks the goroutine body looking for plain SendStmts
// inside loops. Sends appearing as a select's comm clause are skipped —
// the select is the fix this analyzer asks for.
func checkBareSends(pass *Pass, n ast.Node, inLoop bool, report func(token.Pos, string, ...any)) {
	switch s := n.(type) {
	case *ast.FuncLit:
		return
	case *ast.ForStmt:
		if s.Init != nil {
			checkBareSends(pass, s.Init, inLoop, report)
		}
		checkBareSends(pass, s.Body, true, report)
		return
	case *ast.RangeStmt:
		checkBareSends(pass, s.Body, true, report)
		return
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				// The comm operation itself is select-guarded; only the
				// case bodies keep the current loop context.
				for _, st := range cc.Body {
					checkBareSends(pass, st, inLoop, report)
				}
			}
		}
		return
	case *ast.SendStmt:
		if inLoop {
			if obj := chanObject(pass, s.Chan); obj != nil && packageMakesUnbuffered(pass, obj) {
				report(s.Pos(), "send on unbuffered channel %s inside a goroutine loop with no select: if the receiver stops (error return, client gone) this goroutine blocks forever; select on it with a done channel", obj.Name())
			}
		}
	}
	if n != nil {
		walkChildren(n, func(c ast.Node) { checkBareSends(pass, c, inLoop, report) })
	}
}

// chanObject resolves the channel expression to its variable, nil when
// it isn't a simple variable or field reference.
func chanObject(pass *Pass, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.Info.Uses[x]
	case *ast.SelectorExpr:
		return pass.Info.Uses[x.Sel]
	}
	return nil
}

// packageMakesUnbuffered reports whether the package contains a
// `make(chan T)` (or explicit zero capacity) assigned to the object.
// Finding no make at all — a parameter, a channel made elsewhere —
// reports false: the analyzer only speaks when it can see the capacity.
func packageMakesUnbuffered(pass *Pass, obj types.Object) bool {
	unbuffered := false
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) != len(s.Rhs) {
					return true
				}
				for i, lhs := range s.Lhs {
					if chanObject(pass, lhs) == obj || identDefines(pass, lhs, obj) {
						if isUnbufferedMake(pass, s.Rhs[i]) {
							unbuffered = true
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range s.Names {
					if pass.Info.Defs[name] == obj && i < len(s.Values) {
						if isUnbufferedMake(pass, s.Values[i]) {
							unbuffered = true
						}
					}
				}
			}
			return !unbuffered
		})
		if unbuffered {
			break
		}
	}
	return unbuffered
}

// identDefines reports whether e is an identifier that := -defines obj.
func identDefines(pass *Pass, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && pass.Info.Defs[id] == obj
}

// isUnbufferedMake reports whether e is make(chan T) or make(chan T, 0).
func isUnbufferedMake(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if _, ok := pass.Info.Uses[id].(*types.Builtin); !ok {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	t := pass.Info.Types[call.Args[0]]
	if !t.IsType() {
		return false
	}
	if _, ok := t.Type.Underlying().(*types.Chan); !ok {
		return false
	}
	if len(call.Args) == 1 {
		return true
	}
	cap := pass.Info.Types[call.Args[1]]
	return cap.Value != nil && cap.Value.String() == "0"
}
