package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// The call graph is keyed by types.Func.FullName() strings rather than
// *types.Func identity: every target package is type-checked separately
// against export data, so the *types.Func for planner.Resolve seen while
// checking package transport is a different object from the one seen
// while checking package planner itself. FullName ("(*mobweb/internal/
// planner.Planner).Resolve") is stable across those views.

// FuncNode is one function (declaration or literal) in the loaded
// program.
type FuncNode struct {
	// Name is the FullName key: "(pkg.Type).Method", "pkg.Func", or for
	// function literals "enclosing$N" in source order.
	Name string
	// Pkg is the loaded package containing the body.
	Pkg *Package
	// Decl is the named declaration, nil for literals.
	Decl *ast.FuncDecl
	// Lit is the literal body, nil for declarations.
	Lit *ast.FuncLit
	// Calls are the static call sites in the body, excluding those inside
	// nested literals (which get their own nodes).
	Calls []CallSite
}

// Body returns the function's block.
func (n *FuncNode) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	if n.Lit != nil {
		return n.Lit.Body
	}
	return nil
}

// CallSite is one static call from a function body.
type CallSite struct {
	// Callee is the target's FullName; always non-empty (dynamic calls
	// through function values are not recorded).
	Callee string
	// Call is the call expression, for positions.
	Call *ast.CallExpr
	// Deferred marks `defer f(...)`; Go marks `go f(...)`. Both run
	// outside the statement's source position (function exit / new
	// goroutine), which lock-order walks must respect.
	Deferred bool
	Go       bool
}

// CallGraph is the whole-program static call graph over every function
// body in the loaded target packages. External callees (stdlib, export-
// data-only deps) appear as edge targets but have no node.
type CallGraph struct {
	Nodes map[string]*FuncNode
	// byBody finds the node owning a given body, used to map a GoStmt's
	// function literal back to its node.
	byBody map[*ast.BlockStmt]*FuncNode
}

// NodeFor returns the graph node owning the body, or nil.
func (g *CallGraph) NodeFor(body *ast.BlockStmt) *FuncNode {
	return g.byBody[body]
}

// SortedNames returns every node name in deterministic order, so walks
// over the graph produce stable diagnostics.
func (g *CallGraph) SortedNames() []string {
	names := make([]string, 0, len(g.Nodes))
	for name := range g.Nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// buildCallGraph indexes every function body across the packages.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		Nodes:  make(map[string]*FuncNode),
		byBody: make(map[*ast.BlockStmt]*FuncNode),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				name := declFullName(pkg, fd)
				node := &FuncNode{Name: name, Pkg: pkg, Decl: fd}
				g.add(node)
				g.collect(pkg, node, fd.Body, name)
			}
		}
	}
	return g
}

func (g *CallGraph) add(n *FuncNode) {
	g.Nodes[n.Name] = n
	if body := n.Body(); body != nil {
		g.byBody[body] = n
	}
}

// collect records the call sites directly inside body (literals
// excluded) and recursively creates nodes for nested literals, named
// parent$1, parent$2, ... in source order.
func (g *CallGraph) collect(pkg *Package, node *FuncNode, body *ast.BlockStmt, parent string) {
	litCount := 0
	var walk func(n ast.Node, deferred, goStmt bool)
	walk = func(n ast.Node, deferred, goStmt bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				litCount++
				lit := &FuncNode{
					Name: fmt.Sprintf("%s$%d", parent, litCount),
					Pkg:  pkg,
					Lit:  x,
				}
				g.add(lit)
				g.collect(pkg, lit, x.Body, lit.Name)
				return false
			case *ast.DeferStmt:
				g.site(pkg, node, x.Call, true, false)
				// Arguments evaluate at the defer statement; only the
				// call itself is delayed. Walk them with the current
				// flags, and the callee expression too (it may contain
				// literals).
				walk(x.Call.Fun, deferred, goStmt)
				for _, a := range x.Call.Args {
					walk(a, deferred, goStmt)
				}
				return false
			case *ast.GoStmt:
				g.site(pkg, node, x.Call, false, true)
				walk(x.Call.Fun, deferred, goStmt)
				for _, a := range x.Call.Args {
					walk(a, deferred, goStmt)
				}
				return false
			case *ast.CallExpr:
				g.site(pkg, node, x, deferred, goStmt)
				return true
			}
			return true
		})
	}
	walk(body, false, false)
}

func (g *CallGraph) site(pkg *Package, node *FuncNode, call *ast.CallExpr, deferred, goStmt bool) {
	name := calleeFullName(pkg.Info, call)
	if name == "" {
		// Dynamic call through a function value — or a call of a literal
		// spelled inline (go func(){...}()), which the literal node
		// already covers.
		return
	}
	node.Calls = append(node.Calls, CallSite{Callee: name, Call: call, Deferred: deferred, Go: goStmt})
}

// declFullName computes the FullName key for a declaration in a loaded
// package, matching what types.Func.FullName() produces for the same
// function seen through export data.
func declFullName(pkg *Package, fd *ast.FuncDecl) string {
	if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
		return obj.FullName()
	}
	// Unresolvable declarations (blank name) fall back to a positional
	// key so the node still exists.
	return fmt.Sprintf("%s.%s@%d", pkg.PkgPath, fd.Name.Name, pkg.Fset.Position(fd.Pos()).Line)
}

// reachableClosure computes, for every node, the union of `direct`
// values over the node's static call-graph closure (itself included).
// It is the shared fixpoint behind "may this function acquire lock
// class C?" and "may this call reach time.Now?". Edges through `go`
// statements are excluded when excludeGo is set: a spawned goroutine's
// acquisitions do not happen under the caller's locks.
func reachableClosure(g *CallGraph, direct map[string]map[string]bool, excludeGo bool) map[string]map[string]bool {
	out := make(map[string]map[string]bool, len(g.Nodes))
	for name, vals := range direct {
		cp := make(map[string]bool, len(vals))
		for v := range vals {
			cp[v] = true
		}
		out[name] = cp
	}
	// Iterate to fixpoint; the graph is small (one repo), so a simple
	// sweep loop beats maintaining a worklist.
	for changed := true; changed; {
		changed = false
		for _, name := range g.SortedNames() {
			node := g.Nodes[name]
			for _, site := range node.Calls {
				if excludeGo && site.Go {
					continue
				}
				callee, ok := out[site.Callee]
				if !ok {
					continue
				}
				for v := range callee {
					if out[name] == nil {
						out[name] = make(map[string]bool)
					}
					if !out[name][v] {
						out[name][v] = true
						changed = true
					}
				}
			}
		}
	}
	return out
}
