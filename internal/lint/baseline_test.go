package lint_test

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"mobweb/internal/lint"
)

func diagAt(file, analyzer, msg string) lint.Diagnostic {
	return lint.Diagnostic{
		Pos:      token.Position{Filename: file, Line: 42, Column: 3},
		Analyzer: analyzer,
		Message:  msg,
	}
}

func TestBaselineKeyRelativizes(t *testing.T) {
	root := filepath.Join(string(filepath.Separator), "repo")
	inside := diagAt(filepath.Join(root, "internal", "x", "y.go"), "nondet", "wall-clock read")
	if got, want := lint.BaselineKey(root, inside), "nondet\tinternal/x/y.go\twall-clock read"; got != want {
		t.Errorf("BaselineKey inside root = %q, want %q", got, want)
	}
	// Line/column never appear: the whole point is surviving unrelated edits.
	if strings.Contains(lint.BaselineKey(root, inside), "42") {
		t.Error("BaselineKey leaked a line number")
	}
	outside := diagAt(filepath.Join(string(filepath.Separator), "elsewhere", "z.go"), "nondet", "m")
	if got := lint.BaselineKey(root, outside); strings.HasPrefix(got, "nondet\t..") {
		t.Errorf("file outside the root must keep its absolute path, got %q", got)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	root := filepath.Join(string(filepath.Separator), "repo")
	diags := []lint.Diagnostic{
		diagAt(filepath.Join(root, "b.go"), "hotalloc", "make allocates"),
		diagAt(filepath.Join(root, "a.go"), "nondet", "wall-clock read"),
		diagAt(filepath.Join(root, "a.go"), "nondet", "wall-clock read"), // duplicate: multiset
	}
	data := lint.FormatBaseline(root, diags)
	parsed, err := lint.ParseBaseline(data)
	if err != nil {
		t.Fatalf("ParseBaseline(FormatBaseline(...)): %v", err)
	}
	if parsed["nondet\ta.go\twall-clock read"] != 2 {
		t.Errorf("duplicate finding must parse with count 2, got %v", parsed)
	}
	if len(parsed) != 2 {
		t.Errorf("want 2 distinct keys, got %v", parsed)
	}
	// Header and body: comments lead, findings are sorted.
	text := string(data)
	if !strings.HasPrefix(text, "#") {
		t.Error("baseline must start with a comment header")
	}
	if strings.Index(text, "hotalloc\tb.go") > strings.Index(text, "nondet\ta.go") {
		t.Error("baseline findings must be sorted")
	}
}

func TestParseBaselineRejectsMalformedLines(t *testing.T) {
	if _, err := lint.ParseBaseline([]byte("# fine\nnondet\tonly-one-tab\n")); err == nil {
		t.Error("a line without exactly two tabs must be rejected")
	}
	got, err := lint.ParseBaseline([]byte("# comment\n\n\na\tb\tc\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got["a\tb\tc"] != 1 {
		t.Errorf("comments and blanks must be skipped, findings kept: %v", got)
	}
}

func TestApplyBaselineConsumesMultiset(t *testing.T) {
	root := filepath.Join(string(filepath.Separator), "repo")
	d := diagAt(filepath.Join(root, "a.go"), "nondet", "wall-clock read")
	baseline := map[string]int{lint.BaselineKey(root, d): 1}
	// Two identical findings against one baselined: exactly one survives.
	out := lint.ApplyBaseline(baseline, root, []lint.Diagnostic{d, d})
	if len(out) != 1 {
		t.Errorf("baseline entry must be consumed once, got %d surviving findings", len(out))
	}
	// The input baseline map must not be mutated (Run may apply it twice).
	if baseline[lint.BaselineKey(root, d)] != 1 {
		t.Error("ApplyBaseline mutated its input map")
	}
	// A fully-covered run yields nothing.
	if out := lint.ApplyBaseline(baseline, root, []lint.Diagnostic{d}); len(out) != 0 {
		t.Errorf("covered finding must be filtered, got %v", out)
	}
}
