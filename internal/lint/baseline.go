package lint

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
)

// Findings baseline: `mobweblint -baseline lint.baseline` fails only on
// findings NOT recorded in the file, so a newly-tightened analyzer can
// land with its pre-existing findings grandfathered and CI still gates
// every new one. Regenerate with -write-baseline after triaging.
//
// Format: '#' comment lines, then one finding per line,
//
//	analyzer<TAB>slash/relative/path.go<TAB>message
//
// Line and column numbers are deliberately omitted — unrelated edits
// move findings around without changing what they are — and repeated
// identical findings appear once per occurrence (the baseline is a
// multiset: fixing one of three identical findings still shrinks it).

// BaselineKey is the identity of a finding for baseline matching. The
// file path is made root-relative and slash-separated so baselines are
// portable across checkouts.
func BaselineKey(root string, d Diagnostic) string {
	file := d.Pos.Filename
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return d.Analyzer + "\t" + filepath.ToSlash(file) + "\t" + d.Message
}

// ParseBaseline reads a baseline file into its finding multiset.
func ParseBaseline(data []byte) (map[string]int, error) {
	out := make(map[string]int)
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, "\t") != 2 {
			return nil, fmt.Errorf("lint: baseline line %d: want analyzer<TAB>file<TAB>message, got %q", i+1, line)
		}
		out[line]++
	}
	return out, nil
}

// FormatBaseline renders the findings as a baseline file, sorted.
func FormatBaseline(root string, diags []Diagnostic) []byte {
	keys := make([]string, len(diags))
	for i, d := range diags {
		keys[i] = BaselineKey(root, d)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	buf.WriteString("# mobweblint findings baseline.\n")
	buf.WriteString("# One finding per line: analyzer<TAB>file<TAB>message (no line numbers,\n")
	buf.WriteString("# so unrelated edits don't invalidate it). CI fails only on findings\n")
	buf.WriteString("# absent from this file; regenerate with `mobweblint -write-baseline`.\n")
	for _, k := range keys {
		buf.WriteString(k)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// ApplyBaseline returns the findings not covered by the baseline,
// consuming one baseline entry per match.
func ApplyBaseline(baseline map[string]int, root string, diags []Diagnostic) []Diagnostic {
	remaining := make(map[string]int, len(baseline))
	for k, n := range baseline {
		remaining[k] = n
	}
	var out []Diagnostic
	for _, d := range diags {
		k := BaselineKey(root, d)
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		out = append(out, d)
	}
	return out
}
