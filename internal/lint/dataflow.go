package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the small intraprocedural dataflow core under the
// whole-program analyzers. Two pieces:
//
//   - heldWalker: a forward, block-structured walk of one function body
//     tracking whether one lock class is held, invoking a callback at
//     every call evaluated under the lock. It shares lockscope's
//     branch-merge lattice (mergeBranches / fallsThrough): the state is
//     a single bool per tracked class, branches merge conservatively
//     toward "released", and `defer Unlock` pins the class held to
//     function end. Running it once per class acquired in the body
//     keeps the lattice trivial while still giving lockorder the
//     "acquired B while holding A" events it needs.
//
//   - loopExits: reachability of a loop exit from inside a loop body,
//     tracking break-target nesting (a `break` inside a nested select
//     does NOT exit the loop — the exact misreading behind the historic
//     transport reader leak). goroleak builds on it.

// lockMethods are the sync.Mutex/RWMutex methods the walkers model.
// TryLock/TryRLock are deliberately absent: a try-acquire cannot
// deadlock, so it neither starts a critical section nor forms an
// ordering edge.
var lockMethods = map[string]bool{
	"Lock": true, "RLock": true, "Unlock": true, "RUnlock": true,
}

// lockClass classifies call as a mutex method on a global lock class,
// returning the class key, the receiver spelling, and the method name.
// Classes are instance-insensitive:
//
//	"pkgpath.Type.field"      a mutex field, any instance of the type
//	"pkgpath.Type.(embedded)" an embedded mutex, any instance
//	"pkgpath.varname"         a package-level mutex variable
//
// Locals and parameters return "": their ordering is invisible across
// functions, and flagging them would only produce noise.
func lockClass(pkg *Package, call *ast.CallExpr) (class, spell, method string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", ""
	}
	fn := calleeFunc(pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || !lockMethods[fn.Name()] {
		return "", "", ""
	}
	method = fn.Name()
	spell = types.ExprString(sel.X)
	recv := namedOrPointee(pkg.Info.Types[sel.X].Type)
	if recv == nil || recv.Obj().Pkg() == nil {
		return "", "", ""
	}
	if name := recv.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		// mu is embedded: sel.X's own type is the embedding struct.
		return recv.Obj().Pkg().Path() + "." + name + ".(embedded)", spell, method
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		// s.mu.Lock(): class is the owning type plus field name.
		owner := namedOrPointee(pkg.Info.Types[x.X].Type)
		if owner == nil || owner.Obj().Pkg() == nil {
			return "", "", ""
		}
		return owner.Obj().Pkg().Path() + "." + owner.Obj().Name() + "." + x.Sel.Name, spell, method
	case *ast.Ident:
		// mu.Lock(): only package-level variables form a class.
		v, ok := pkg.Info.Uses[x].(*types.Var)
		if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
			return "", "", ""
		}
		return v.Pkg().Path() + "." + v.Name(), spell, method
	}
	return "", "", ""
}

// heldEvent is delivered by heldWalker for everything that happens while
// the tracked class is held.
type heldEvent struct {
	// Call is the expression evaluated under the lock.
	Call *ast.CallExpr
	// Class/Spell/Method are set when Call is itself a mutex operation.
	Class, Spell, Method string
	// AcquiredAt is where the tracked class was most recently acquired.
	AcquiredAt token.Pos
	// AcquireSpell is the receiver spelling of that acquisition.
	AcquireSpell string
	// AcquireMethod is "Lock" or "RLock" for that acquisition.
	AcquireMethod string
}

// heldWalker tracks one lock class through one function body.
type heldWalker struct {
	pkg   *Package
	class string
	// onEvent fires for every call evaluated while class is held,
	// including nested mutex operations.
	onEvent func(heldEvent)

	deferred      bool
	acquiredAt    token.Pos
	acquireSpell  string
	acquireMethod string
}

// walkHeld runs the walker over a body for one class.
func walkHeld(pkg *Package, body *ast.BlockStmt, class string, onEvent func(heldEvent)) {
	w := &heldWalker{pkg: pkg, class: class, onEvent: onEvent}
	w.walkList(body.List, false)
}

// classesAcquired returns the distinct global lock classes acquired
// directly in the body (nested literals excluded), with one witness
// spelling each, in source order.
func classesAcquired(pkg *Package, body *ast.BlockStmt) []string {
	seen := make(map[string]bool)
	var out []string
	inspectSkippingFuncLits(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if class, _, method := lockClass(pkg, call); class != "" && (method == "Lock" || method == "RLock") && !seen[class] {
			seen[class] = true
			out = append(out, class)
		}
	})
	return out
}

func (w *heldWalker) walkList(stmts []ast.Stmt, held bool) bool {
	for _, st := range stmts {
		held = w.walkStmt(st, held)
	}
	return held
}

func (w *heldWalker) walkStmt(st ast.Stmt, held bool) bool {
	switch s := st.(type) {
	case *ast.ExprStmt:
		return w.scanExpr(s.X, held)
	case *ast.DeferStmt:
		// A deferred unlock of the class pins it held to function end.
		// Other deferred calls run at exit under an unknowable lock
		// regime; err toward silence and skip the call itself, but the
		// argument expressions evaluate here and now.
		if w.deferUnlocksClass(s) {
			if held {
				w.deferred = true
			}
			return held
		}
		for _, arg := range s.Call.Args {
			held = w.scanExpr(arg, held)
		}
		return held
	case *ast.GoStmt:
		// The goroutine body runs elsewhere, not under this lock; its
		// arguments evaluate here.
		for _, arg := range s.Call.Args {
			held = w.scanExpr(arg, held)
		}
		return held
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			held = w.scanExpr(e, held)
		}
		for _, e := range s.Lhs {
			held = w.scanExpr(e, held)
		}
		return held
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			held = w.scanExpr(e, held)
		}
		return held
	case *ast.SendStmt:
		held = w.scanExpr(s.Chan, held)
		return w.scanExpr(s.Value, held)
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				w.walkList(cc.Body, held)
			}
		}
		return held
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		held = w.scanExpr(s.Cond, held)
		bodyHeld := w.walkList(s.Body.List, held)
		elseHeld := held
		elseFalls := true
		if s.Else != nil {
			elseHeld = w.walkStmt(s.Else, held)
			elseFalls = fallsThrough(s.Else)
		}
		return mergeBranches(held,
			branch{bodyHeld, fallsThroughList(s.Body.List)},
			branch{elseHeld, elseFalls})
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			held = w.scanExpr(s.Cond, held)
		}
		w.walkList(s.Body.List, held)
		return held
	case *ast.RangeStmt:
		held = w.scanExpr(s.X, held)
		w.walkList(s.Body.List, held)
		return held
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			held = w.scanExpr(s.Tag, held)
		}
		return w.walkCases(s.Body, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		return w.walkCases(s.Body, held)
	case *ast.BlockStmt:
		return w.walkList(s.List, held)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	case *ast.IncDecStmt:
		return w.scanExpr(s.X, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						held = w.scanExpr(v, held)
					}
				}
			}
		}
		return held
	default:
		return held
	}
}

func (w *heldWalker) walkCases(body *ast.BlockStmt, held bool) bool {
	branches := make([]branch, 0, len(body.List))
	for _, clause := range body.List {
		if cc, ok := clause.(*ast.CaseClause); ok {
			after := w.walkList(cc.Body, held)
			branches = append(branches, branch{after, fallsThroughList(cc.Body)})
		}
	}
	return mergeBranches(held, branches...)
}

// scanExpr visits every call in the expression in evaluation order,
// updating the held state across lock/unlock operations of the tracked
// class and delivering events for everything evaluated while held.
// Nested function literals are skipped (their bodies are independent
// graph nodes).
func (w *heldWalker) scanExpr(e ast.Expr, held bool) bool {
	if e == nil {
		return held
	}
	var calls []*ast.CallExpr
	inspectSkippingFuncLits(e, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok {
			calls = append(calls, call)
		}
	})
	for _, call := range calls {
		class, spell, method := lockClass(w.pkg, call)
		if class == w.class {
			switch method {
			case "Lock", "RLock":
				if held {
					// Re-acquiring the tracked class while held: the
					// self-deadlock event, delivered before the state
					// (already held) is refreshed.
					w.emit(call, class, spell, method)
				}
				held = true
				w.acquiredAt = call.Pos()
				w.acquireSpell = spell
				w.acquireMethod = method
			case "Unlock", "RUnlock":
				if !w.deferred {
					held = false
				}
			}
			continue
		}
		if held {
			w.emit(call, class, spell, method)
		}
	}
	return held
}

func (w *heldWalker) emit(call *ast.CallExpr, class, spell, method string) {
	w.onEvent(heldEvent{
		Call: call, Class: class, Spell: spell, Method: method,
		AcquiredAt: w.acquiredAt, AcquireSpell: w.acquireSpell, AcquireMethod: w.acquireMethod,
	})
}

// deferUnlocksClass reports whether the defer releases the tracked
// class, directly or inside a deferred closure.
func (w *heldWalker) deferUnlocksClass(d *ast.DeferStmt) bool {
	if class, _, method := lockClass(w.pkg, d.Call); class == w.class && (method == "Unlock" || method == "RUnlock") {
		return true
	}
	if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
		found := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if class, _, method := lockClass(w.pkg, call); class == w.class && (method == "Unlock" || method == "RUnlock") {
					found = true
				}
			}
			return !found
		})
		return found
	}
	return false
}

// loopExits reports whether control can leave the loop from inside its
// body: a return; a break that binds to THIS loop (bare break not
// swallowed by a nested for/switch/select, or a labeled break naming
// this loop's label); a goto (conservatively an exit); or a terminal
// call (panic, os.Exit, runtime.Goexit, log.Fatal*, testing Fatal*).
// Function literals inside the body are not part of the loop's control
// flow and are skipped.
func loopExits(info *types.Info, body *ast.BlockStmt, label string) bool {
	exits := false
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		if exits || n == nil {
			return
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			return
		case *ast.ReturnStmt:
			exits = true
			return
		case *ast.BranchStmt:
			switch s.Tok {
			case token.BREAK:
				if s.Label == nil && depth == 0 {
					exits = true
				} else if s.Label != nil && s.Label.Name == label {
					exits = true
				}
			case token.GOTO:
				exits = true
			}
			return
		case *ast.ForStmt:
			walkChildren(s, func(c ast.Node) { walk(c, depth+1) })
			return
		case *ast.RangeStmt:
			walkChildren(s, func(c ast.Node) { walk(c, depth+1) })
			return
		case *ast.SwitchStmt:
			walkChildren(s, func(c ast.Node) { walk(c, depth+1) })
			return
		case *ast.TypeSwitchStmt:
			walkChildren(s, func(c ast.Node) { walk(c, depth+1) })
			return
		case *ast.SelectStmt:
			walkChildren(s, func(c ast.Node) { walk(c, depth+1) })
			return
		case *ast.CallExpr:
			if isTerminalCall(info, s) {
				exits = true
				return
			}
		}
		walkChildren(n, func(c ast.Node) { walk(c, depth) })
	}
	for _, st := range body.List {
		walk(st, 0)
	}
	return exits
}

// walkChildren visits n's direct children once each.
func walkChildren(n ast.Node, visit func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			visit(c)
		}
		return false
	})
}

// isTerminalCall reports whether the call never returns.
func isTerminalCall(info *types.Info, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		return true
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() + "." + fn.Name() {
	case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln",
		"testing.Fatal", "testing.Fatalf", "testing.FailNow", "testing.Skip",
		"testing.Skipf", "testing.SkipNow":
		return true
	}
	return false
}
