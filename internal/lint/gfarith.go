package lint

import (
	"go/ast"
	"go/token"
)

// gf256Package is the arithmetic substrate package. Any package that
// imports it directly is handling GF(2^8) field elements, and byte
// values there must go through the field helpers. The package itself is
// exempt — it implements those helpers.
var gf256Package = "mobweb/internal/gf256"

// GFArith flags integer +, -, *, /, % (and their compound-assignment
// forms) applied to byte-typed operands in packages that import gf256.
//
// Cooked packets are GF(2^8)-linear combinations of raw packets (Rabin
// dispersal, §4.1): addition is XOR and multiplication runs through
// log/exp tables. Integer arithmetic on a field element produces a
// value that decodes to garbage — and the CRC on each packet means the
// corruption is attributed to the channel, not the encoder, making this
// the nastiest kind of silent bug. gf256.Add/Mul/Div are the only legal
// operations on field elements.
//
// Index and length arithmetic is int-typed in Go, so it never trips
// this check — the "allowlist for index arithmetic" falls out of the
// type system. For the rare legitimate byte arithmetic near field code
// (wire-format headers, say), suppress the line with //lint:allow
// gfarith.
var GFArith = &Analyzer{
	Name: "gfarith",
	Doc: "flag integer +,-,*,/,% on byte operands and byte << (unreduced doubling) in packages importing gf256; " +
		"field elements must use gf256.Add/Mul/Div (XOR/log-exp tables), not machine arithmetic",
	Run: runGFArith,
}

var gfForbiddenOps = map[token.Token]string{
	token.ADD: "+", token.SUB: "-", token.MUL: "*", token.QUO: "/", token.REM: "%",
	token.ADD_ASSIGN: "+=", token.SUB_ASSIGN: "-=", token.MUL_ASSIGN: "*=",
	token.QUO_ASSIGN: "/=", token.REM_ASSIGN: "%=",
}

// Left shifts get their own diagnostic: byte<<k is "unreduced doubling"
// — multiplication by 2^k without the modular reduction by the field
// polynomial, so it overflows silently for any element with high bits
// set. Only the shifted operand's type matters; the shift count is
// typically an untyped constant. Wider integer shifts (the uint64 SWAR
// lanes in the nibble kernel, table-index math) are untouched.
var gfShiftOps = map[token.Token]string{
	token.SHL: "<<", token.SHL_ASSIGN: "<<=",
}

func runGFArith(pass *Pass) error {
	if pass.Pkg.Path() == gf256Package {
		return nil
	}
	importsGF := false
	for _, imp := range pass.Pkg.Imports() {
		if imp.Path() == gf256Package {
			importsGF = true
			break
		}
	}
	if !importsGF {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if op, forbidden := gfForbiddenOps[e.Op]; forbidden && isByte(pass.Info.Types[e.X].Type) && isByte(pass.Info.Types[e.Y].Type) {
					pass.Reportf(e.OpPos, "integer %q on byte operands in a GF(2^8) package; use gf256.%s (field arithmetic, not machine arithmetic)",
						op, gfHelperFor(e.Op))
				}
				if op, shift := gfShiftOps[e.Op]; shift && isByte(pass.Info.Types[e.X].Type) {
					pass.Reportf(e.OpPos, "byte %q in a GF(2^8) package is unreduced doubling; use gf256.Mul with a power of Exp (reduction modulo the field polynomial)",
						op)
				}
			case *ast.AssignStmt:
				if op, forbidden := gfForbiddenOps[e.Tok]; forbidden && len(e.Lhs) == 1 && isByte(pass.Info.Types[e.Lhs[0]].Type) {
					pass.Reportf(e.TokPos, "integer %q on byte operands in a GF(2^8) package; use gf256.%s (field arithmetic, not machine arithmetic)",
						op, gfHelperFor(e.Tok))
				}
				if op, shift := gfShiftOps[e.Tok]; shift && len(e.Lhs) == 1 && isByte(pass.Info.Types[e.Lhs[0]].Type) {
					pass.Reportf(e.TokPos, "byte %q in a GF(2^8) package is unreduced doubling; use gf256.Mul with a power of Exp (reduction modulo the field polynomial)",
						op)
				}
			}
			return true
		})
	}
	return nil
}

func gfHelperFor(op token.Token) string {
	switch op {
	case token.ADD, token.ADD_ASSIGN:
		return "Add"
	case token.SUB, token.SUB_ASSIGN:
		return "Sub"
	case token.MUL, token.MUL_ASSIGN:
		return "Mul"
	case token.QUO, token.QUO_ASSIGN:
		return "Div"
	default:
		return "Add/Mul/Div"
	}
}
