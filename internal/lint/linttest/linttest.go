// Package linttest is the fixture harness for the analyzer suite: the
// stdlib stand-in for golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is an ordinary Go package under internal/lint/testdata/src
// (invisible to ./... but loadable as an explicit pattern). Lines where
// an analyzer must report carry analysistest-style want comments:
//
//	segs[0].Score = 2 // want "store through a slice shared"
//
// Each quoted string is a regexp matched against the diagnostic message;
// several strings on one line expect several diagnostics. The harness
// fails on every unmatched want AND on every unexpected diagnostic, so
// fixtures pin both the true positives and the allowed patterns.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mobweb/internal/lint"
)

// Override swaps *p to v and returns a func restoring the old value;
// used by fixture tests to retarget analyzer configuration (e.g.
// lint.PlanOwnerPackage) at a testdata package.
//
//	defer linttest.Override(&lint.PlanOwnerPackage, "mobweb/internal/lint/testdata/src/planmutowner")()
func Override[T any](p *T, v T) func() {
	old := *p
	*p = v
	return func() { *p = old }
}

// Run loads the fixture package at pattern (relative to the calling
// test's working directory), applies exactly one analyzer, and checks
// its diagnostics against the fixture's want comments.
func Run(t *testing.T, a *lint.Analyzer, pattern string) {
	t.Helper()
	diags, err := lint.Run(".", []string{pattern}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pattern, err)
	}
	wants, err := parseWants(pattern)
	if err != nil {
		t.Fatalf("parsing want comments in %s: %v", pattern, err)
	}

	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if !matched[i] && filepath.Base(d.Pos.Filename) == w.file && d.Pos.Line == w.line && w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// want is one expected diagnostic: a regexp anchored to a file line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var wantArgRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// parseWants scans every .go file in the fixture directory for
// `// want "re"` comments. Quoted strings may be double-quoted (with Go
// escapes) or backquoted (taken literally).
func parseWants(pattern string) ([]want, error) {
	files, err := filepath.Glob(filepath.Join(filepath.FromSlash(pattern), "*.go"))
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files under %s", pattern)
	}
	var wants []want
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			args := wantArgRE.FindAllString(m[1], -1)
			if len(args) == 0 {
				return nil, fmt.Errorf("%s:%d: want comment with no quoted regexp", file, i+1)
			}
			for _, arg := range args {
				text := arg
				if strings.HasPrefix(arg, `"`) {
					text, err = strconv.Unquote(arg)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want string %s: %v", file, i+1, arg, err)
					}
				} else {
					text = strings.Trim(arg, "`")
				}
				re, err := regexp.Compile(text)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", file, i+1, text, err)
				}
				wants = append(wants, want{file: filepath.Base(file), line: i + 1, re: re})
			}
		}
	}
	return wants, nil
}
