package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrwrapPackages are the boundary packages whose errors feed the
// client-facing status mapping: the gateway turns *planner.RequestError
// into 404/400 via errors.As, and the transport forwards curated
// planner messages. Re-wrapping without %w anywhere in these packages
// severs the chain and silently degrades every client error to a 500.
// A var so fixture tests can extend it.
var ErrwrapPackages = map[string]bool{
	"mobweb/internal/planner":   true,
	"mobweb/internal/transport": true,
	"mobweb/internal/gateway":   true,
}

// ErrWrap requires fmt.Errorf calls in the boundary packages to carry
// error-typed arguments with %w (or to route through the typed
// *planner.RequestError constructors instead). Two shapes are flagged:
//
//	fmt.Errorf("resolve: %v", err)      // chain severed: errors.As fails
//	fmt.Errorf("resolve: %s", e.Error()) // same bug wearing a string
//
// while fmt.Errorf("resolve: %w", err) and the RequestError helpers
// pass. The gateway's writePlanError and the transport's error
// forwarding both depend on the chain surviving to the boundary.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc: "require %w (or typed *planner.RequestError) when fmt.Errorf carries an error across the " +
		"planner/transport/gateway boundaries, so errors.As keeps driving the 404/400/500 mapping",
	Run: runErrWrap,
}

func runErrWrap(pass *Pass) error {
	if !ErrwrapPackages[pass.Pkg.Path()] {
		return nil
	}
	errorType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || calleeFullName(pass.Info, call) != "fmt.Errorf" || len(call.Args) < 2 {
				return true
			}
			format, ok := constantString(pass.Info, call.Args[0])
			wraps := ok && strings.Contains(format, "%w")
			for _, arg := range call.Args[1:] {
				t := pass.Info.Types[arg].Type
				if t != nil && types.Implements(t, errorType) && !wraps {
					pass.Reportf(arg.Pos(), "error crosses the %s boundary without %%w; wrap it (or return a typed *planner.RequestError) so errors.As keeps working", pass.Pkg.Name())
					return true
				}
				// err.Error() smuggled in as a string defeats wrapping
				// even when another arg uses %w.
				if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
					if sel, ok := ast.Unparen(inner.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Error" && len(inner.Args) == 0 {
						if rt := pass.Info.Types[sel.X].Type; rt != nil && types.Implements(rt, errorType) {
							pass.Reportf(arg.Pos(), "err.Error() flattens the chain at the %s boundary; pass the error itself with %%w", pass.Pkg.Name())
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// constantString evaluates e as a constant string when possible.
func constantString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
