package lint_test

import (
	"testing"

	"mobweb/internal/lint"
	"mobweb/internal/lint/linttest"
)

func TestFrameMutSharedSlices(t *testing.T) {
	linttest.Run(t, lint.FrameMut, "./testdata/src/framemut")
}

// The layers that actually consume cached frames must satisfy the
// analyzer: transport writes shared frames to sockets (or copies them
// before injection), the gateway streams them, and the planner cooks
// them — none may write through a cache-owned slice.
func TestFrameMutCleanOnConsumers(t *testing.T) {
	pkgs := []string{
		"mobweb/internal/transport",
		"mobweb/internal/planner",
		"mobweb/internal/gateway",
		"mobweb/cmd/mrtload",
	}
	diags, err := lint.Run(".", pkgs, []*lint.Analyzer{lint.FrameMut})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
