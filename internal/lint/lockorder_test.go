package lint_test

import (
	"strings"
	"testing"

	"mobweb/internal/lint"
	"mobweb/internal/lint/linttest"
)

func TestLockOrder(t *testing.T) {
	linttest.Run(t, lint.LockOrder, "./testdata/src/lockorder")
}

// A lock-order cycle and a lockscope held-across-blocker finding inside
// the same critical section are one defect; lint.Run must keep the cycle
// report and drop the symptom. The lockscope finding on the cycle-free
// mutex must survive the dedup.
func TestLockOrderSuppressesLockScopeInsideCycle(t *testing.T) {
	diags, err := lint.Run(".", []string{"./testdata/src/lockdedup"}, []*lint.Analyzer{lint.LockScope, lint.LockOrder})
	if err != nil {
		t.Fatal(err)
	}
	var cycles, scope []lint.Diagnostic
	for _, d := range diags {
		switch d.Analyzer {
		case "lockorder":
			cycles = append(cycles, d)
		case "lockscope":
			scope = append(scope, d)
		}
	}
	if len(cycles) < 2 {
		t.Errorf("want the cycle reported from both witnessing edges, got %d lockorder findings: %v", len(cycles), cycles)
	}
	if len(scope) != 1 {
		t.Fatalf("want exactly the cycle-free lockscope finding to survive dedup, got %d: %v", len(scope), scope)
	}
	if !strings.Contains(scope[0].Message, "muLone") {
		t.Errorf("surviving lockscope finding should be about muLone, got: %s", scope[0])
	}

	// Sanity: without lockorder in the run, both lockscope findings exist —
	// proving the dedup (not the walker) removed the in-cycle one.
	alone, err := lint.Run(".", []string{"./testdata/src/lockdedup"}, []*lint.Analyzer{lint.LockScope})
	if err != nil {
		t.Fatal(err)
	}
	if len(alone) != 2 {
		t.Errorf("lockscope alone should report both sleeps, got %d: %v", len(alone), alone)
	}
}
