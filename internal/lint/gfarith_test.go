package lint_test

import (
	"testing"

	"mobweb/internal/lint"
	"mobweb/internal/lint/linttest"
)

func TestGFArith(t *testing.T) {
	linttest.Run(t, lint.GFArith, "./testdata/src/gfarith")
}

// gf256 implements the field helpers with machine arithmetic on its
// log/exp tables; the analyzer must exempt it rather than flag its own
// substrate.
func TestGFArithExemptsGF256Itself(t *testing.T) {
	diags, err := lint.Run(".", []string{"mobweb/internal/gf256"}, []*lint.Analyzer{lint.GFArith})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic in gf256: %s", d)
	}
}

// matrix and erasure are the heaviest gf256 users (inversion,
// encode/decode kernels); they must already be clean — all field math
// goes through gf256 helpers, and index arithmetic is not flagged.
func TestGFArithCleanOnFieldUsers(t *testing.T) {
	diags, err := lint.Run(".", []string{"mobweb/internal/matrix", "mobweb/internal/erasure"}, []*lint.Analyzer{lint.GFArith})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
