package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matched by the patterns (relative to
// dir), entirely offline. It shells out to `go list -deps -export -json`,
// which compiles each dependency and reports the path of its export
// data; the targets themselves are then parsed from source and checked
// against that export data with the standard gc importer. This is the
// same division of labour as golang.org/x/tools/go/packages in
// LoadSyntax mode, minus the dependency on x/tools (unavailable here:
// the build environment has no module proxy access).
//
// Explicit testdata paths (e.g. "./testdata/src/planmut") are legal
// patterns even though "./..." never matches them — exactly how the
// analyzer fixtures stay out of the production lint run.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,GoFiles,Export,DepOnly,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports, targets, err := decodeListOutput(out)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))

	var pkgs []*Package
	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath: t.ImportPath,
			Dir:     t.Dir,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
		})
	}
	return pkgs, nil
}

// decodeListOutput parses the JSON stream `go list -deps -export -json`
// produces into the export-data index and the (sorted) target packages.
// Any per-package error — a type error in a dependency, an import cycle
// — is surfaced here rather than half-loading.
func decodeListOutput(out []byte) (exports map[string]string, targets []listPackage, err error) {
	exports = make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	return exports, targets, nil
}

// exportLookup adapts the ImportPath→export-file index to the reader
// interface importer.ForCompiler wants. Stdlib-vendored modules need a
// remap: net/http's source says `import "golang.org/x/net/http/httpguts"`
// — the path the importer asks for — but go list reports that package
// (and its export file) as "vendor/golang.org/x/net/http/httpguts".
func exportLookup(exports map[string]string) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			file, ok = exports["vendor/"+path]
		}
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
}

// Run loads the patterns and applies every analyzer to every package,
// returning the findings sorted by position. Whole-program analyzers
// run first over a shared Program; per-package findings they suppressed
// (one defect, one report) are dropped before sorting.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var programAnalyzers, pkgAnalyzers []*Analyzer
	for _, a := range analyzers {
		if a.RunProgram != nil {
			programAnalyzers = append(programAnalyzers, a)
		} else {
			pkgAnalyzers = append(pkgAnalyzers, a)
		}
	}

	var diags []Diagnostic
	var prog *Program
	if len(programAnalyzers) > 0 {
		prog = NewProgram(pkgs)
		for _, a := range programAnalyzers {
			pass := &ProgramPass{
				Analyzer: a,
				Program:  prog,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.RunProgram(pass); err != nil {
				return nil, fmt.Errorf("lint: %s: %w", a.Name, err)
			}
		}
	}

	var pkgDiags []Diagnostic
	for _, pkg := range pkgs {
		allow := buildAllow(pkg.Fset, pkg.Files)
		for _, a := range pkgAnalyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				allow:    allow,
				report:   func(d Diagnostic) { pkgDiags = append(pkgDiags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	for _, d := range pkgDiags {
		if prog != nil && prog.suppressed(d) {
			continue
		}
		diags = append(diags, d)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
