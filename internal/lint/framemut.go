package lint

import "go/ast"

// SharedFrameAccessors return slices that alias frame-cache-owned bytes:
// fully cooked wire frames shared by every connection streaming the same
// document. Writing through one corrupts concurrent streams (and, since
// frames are CRC-framed, poisons every later fetch served from the
// entry). A var, not a const map, so fixture tests can retarget it.
var SharedFrameAccessors = map[string]bool{
	"(*mobweb/internal/framecache.Cache).Get":       true,
	"(*mobweb/internal/framecache.Cache).GetOrCook": true,
	"(*mobweb/internal/planner.Resolved).Frame":     true,
}

// FrameMut enforces the frame cache's immutability contract, the sibling
// of planmut's rule 2: slices obtained from framecache.Cache.Get /
// GetOrCook or planner.Resolved.Frame are shared across connections and
// must be treated as read-only. Element stores, append with such a slice
// as the destination, and copy into it are flagged; re-slicing keeps the
// taint, and copying into a fresh slice clears it. Callers that must
// mutate a frame (fault injectors) copy it into private scratch first —
// exactly what transport/server.go does before Inject.
var FrameMut = &Analyzer{
	Name: "framemut",
	Doc: "flag writes through slices returned by the shared frame cache " +
		"(framecache.Cache.Get/GetOrCook, planner.Resolved.Frame): cached frames are shared and immutable",
	Run: runFrameMut,
}

func runFrameMut(pass *Pass) error {
	forEachFunc(pass.Files, func(_ string, body *ast.BlockStmt) {
		checkSharedSliceWrites(pass, body, SharedFrameAccessors, "the frame cache")
	})
	return nil
}
