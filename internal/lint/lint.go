// Package lint is a self-contained static-analysis framework plus the
// analyzers that machine-check this repository's correctness invariants:
//
//   - planmut: cached *core.Plan values are immutable after construction,
//     and the slices its accessors share must never be written through
//     (the planner LRU hands one plan to many goroutines; §4's "any M
//     intact cooked packets reconstruct the document" dies silently if a
//     cached plan is mutated).
//   - gfarith: parity rows are GF(2^8)-linear combinations; byte-valued
//     field elements must go through gf256.Add/Mul/Div, never integer
//     +, -, *, /. Index arithmetic stays int-typed and is untouched.
//   - lockscope: mutexes must not be held across channel operations,
//     network I/O, or plan builds (the singleflight deadlock shape the
//     planner explicitly avoids by dropping its lock around
//     core.NewPlan).
//   - errwrap: errors crossing the planner/transport/gateway package
//     boundaries must be wrapped with %w (or carried as a typed
//     *planner.RequestError) so the client-facing 404/400 mapping keeps
//     seeing the chain.
//   - lockorder: the global mutex acquisition-order graph (built over a
//     cross-package call graph, see callgraph.go/program.go) must be
//     acyclic — planner.mu strictly outer to framecache.Cache.mu, and
//     framecache never calls back.
//   - goroleak: goroutines need an exit path; no unconditional loops
//     without a way out, no bare unbuffered sends in goroutine loops
//     (the historic transport reader-leak shape).
//   - nondet: the packages feeding golden traces, seeded chaos and
//     cache keys must not read wall clocks, draw unseeded randomness,
//     or leak map iteration order into output (//mobweb:nondet-ok opts
//     genuinely wall-clock lines out).
//   - hotalloc: //mobweb:hot functions — the GF(2^8) kernels, CRC,
//     packet marshal, frame append/write — must not allocate (fmt,
//     make, growing append, boxing), guarding the zero-alloc wins.
//
// The framework mirrors the golang.org/x/tools go/analysis API surface
// (Analyzer, Pass, Reportf, analysistest-style fixtures with // want
// comments) but is built only on the standard library: the container
// has no module proxy access, so x/tools cannot be a dependency.
// Packages are loaded offline via `go list -deps -export -json` and the
// compiler's export data (see load.go).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one static check, in the image of analysis.Analyzer.
// Exactly one of Run and RunProgram is set: Run sees one package at a
// time, RunProgram sees the whole load (call graph included) at once.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow
	// suppressions.
	Name string
	// Doc is the one-paragraph description shown by `mobweblint -help`.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
	// RunProgram inspects the whole program: every target package plus
	// the cross-package call graph (see program.go). Program analyzers
	// run before per-package ones so they can suppress subsumed
	// findings (lockorder absorbing lockscope symptoms).
	RunProgram func(*ProgramPass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// allow maps "file:line" to the analyzer names suppressed there by a
	// //lint:allow comment.
	allow map[string]map[string]bool
	// report receives every non-suppressed diagnostic.
	report func(Diagnostic)
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic the way compilers and vet do.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding unless the line carries a matching
// //lint:allow suppression.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	key := fmt.Sprintf("%s:%d", position.Filename, position.Line)
	if names, ok := p.allow[key]; ok && (names[p.Analyzer.Name] || names["all"]) {
		return
	}
	p.report(Diagnostic{Pos: position, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Analyzers returns every registered analyzer, the multichecker's suite.
// Program-wide analyzers (lockorder, nondet) share one whole-program
// view per run; the rest see one package at a time.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		PlanMut, FrameMut, GFArith, LockScope, ErrWrap,
		LockOrder, GoroLeak, NonDet, HotAlloc,
	}
}

// buildAllow scans file comments for //lint:allow suppressions. The
// comment applies to the line it sits on:
//
//	frame[0] += 1 //lint:allow gfarith (wire header, not a field element)
//
// Multiple analyzers may be listed, comma- or space-separated; "all"
// suppresses every analyzer on the line.
func buildAllow(fset *token.FileSet, files []*ast.File) map[string]map[string]bool {
	allow := make(map[string]map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				if i := strings.Index(text, "("); i >= 0 {
					text = text[:i]
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				if allow[key] == nil {
					allow[key] = make(map[string]bool)
				}
				for _, name := range strings.FieldsFunc(text, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
					allow[key][name] = true
				}
			}
		}
	}
	return allow
}

// calleeFunc resolves a call expression to the static *types.Func it
// invokes (method or package-level function), or nil for builtins,
// conversions and indirect calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Qualified identifier pkg.Func.
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	}
	return nil
}

// calleeFullName returns types.Func.FullName() for the call's static
// callee, e.g. "(*mobweb/internal/core.Plan).Segments" or
// "mobweb/internal/core.NewPlan"; empty when unresolvable.
func calleeFullName(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		return fn.FullName()
	}
	return ""
}

// isByte reports whether t's underlying type is byte/uint8.
func isByte(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// namedOrPointee unwraps one level of pointer and returns the named type
// beneath, or nil.
func namedOrPointee(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// forEachFunc invokes fn for every function body in the files, named
// after the enclosing declaration. Function literals inherit the nearest
// named function's name (a closure inside newPlan is still constructor
// code), which the callers use for allowlist decisions.
func forEachFunc(files []*ast.File, fn func(name string, body *ast.BlockStmt)) {
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn(fd.Name.Name, fd.Body)
		}
	}
}
