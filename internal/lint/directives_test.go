package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const directivesSrc = `package p

import "time"

// hot is a documented hot path.
//
//mobweb:hot fixture reason
func hot() {}

// plain has no directive.
func plain() {}

func body() int64 {
	a := time.Now().UnixNano() //mobweb:nondet-ok trailing form
	//mobweb:nondet-ok standalone form covers the next line
	b := time.Now().UnixNano()
	c := time.Now().UnixNano()
	return a + b + c
}
`

func TestDirectiveIndex(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", directivesSrc, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	idx := buildDirectives(fset, []*ast.File{f})
	at := func(line int) token.Position { return token.Position{Filename: "p.go", Line: line} }

	cases := []struct {
		line int
		name string
		want bool
		why  string
	}{
		{14, "nondet-ok", true, "trailing directive covers its own line"},
		{15, "nondet-ok", true, "standalone directive covers its own line"},
		{16, "nondet-ok", true, "standalone directive covers the next line"},
		{17, "nondet-ok", false, "coverage stops after one line"},
		{14, "hot", false, "directive names are distinct"},
		{14, "nondet-ok", true, "exact name matches"},
	}
	for _, c := range cases {
		if got := idx.onLine(at(c.line), c.name); got != c.want {
			t.Errorf("line %d directive %q = %v, want %v (%s)", c.line, c.name, got, c.want, c.why)
		}
	}
}

func TestFuncDirective(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", directivesSrc, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]*ast.FuncDecl)
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			byName[fd.Name.Name] = fd
		}
	}
	if !funcDirective(byName["hot"], "hot") {
		t.Error("hot's doc comment carries //mobweb:hot; funcDirective missed it")
	}
	if funcDirective(byName["plain"], "hot") {
		t.Error("plain has no directive; funcDirective invented one")
	}
	if funcDirective(byName["hot"], "nondet-ok") {
		t.Error("hot carries //mobweb:hot, not //mobweb:nondet-ok")
	}
	if funcDirective(nil, "hot") {
		t.Error("nil declaration must not carry directives")
	}
}

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text string
		name string
		ok   bool
	}{
		{"//mobweb:hot per-frame kernel", "hot", true},
		{"//mobweb:nondet-ok", "nondet-ok", true},
		{"//mobweb:", "", false},       // name missing
		{"// mobweb:hot", "", false},   // space breaks the directive form
		{"//lint:allow hotalloc", "", false}, // different namespace
		{"plain text", "", false},
	}
	for _, c := range cases {
		name, ok := parseDirective(c.text)
		if name != c.name || ok != c.ok {
			t.Errorf("parseDirective(%q) = (%q, %v), want (%q, %v)", c.text, name, ok, c.name, c.ok)
		}
	}
}
