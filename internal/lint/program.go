package lint

import (
	"fmt"
	"go/token"
)

// Program is the whole-program view shared by cross-package analyzers:
// every loaded target package, the static call graph over all of them,
// and the //mobweb: directive index. One Program is built per Run and
// handed to each analyzer that declares RunProgram.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package
	// Graph is the FullName-keyed static call graph (see callgraph.go).
	Graph *CallGraph

	directives *directiveIndex
	allow      map[string]map[string]bool
	// suppress maps an analyzer name to line ranges where its findings
	// are subsumed by a whole-program finding (lockscope findings inside
	// a lockorder cycle's critical section report one defect, not two).
	suppress map[string][]lineRange
}

type lineRange struct {
	file       string
	from, to   int
	subsumedBy string
}

// NewProgram builds the shared analysis state over the loaded packages.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:     pkgs,
		Graph:    buildCallGraph(pkgs),
		suppress: make(map[string][]lineRange),
		allow:    make(map[string]map[string]bool),
	}
	if len(pkgs) > 0 {
		prog.Fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		for key, names := range buildAllow(pkg.Fset, pkg.Files) {
			prog.allow[key] = names
		}
	}
	prog.directives = buildProgramDirectives(pkgs)
	return prog
}

func buildProgramDirectives(pkgs []*Package) *directiveIndex {
	idx := &directiveIndex{lines: make(map[string]map[string]bool)}
	for _, pkg := range pkgs {
		for key, names := range buildDirectives(pkg.Fset, pkg.Files).lines {
			idx.lines[key] = names
		}
	}
	return idx
}

// Directive reports whether the named //mobweb: directive covers pos's
// line in any loaded file.
func (prog *Program) Directive(pos token.Position, name string) bool {
	return prog.directives.onLine(pos, name)
}

// Suppress registers a line range in which the named analyzer's
// per-package findings are dropped because a whole-program finding
// already covers the defect.
func (prog *Program) Suppress(analyzer, file string, from, to int, subsumedBy string) {
	if from > to {
		from, to = to, from
	}
	prog.suppress[analyzer] = append(prog.suppress[analyzer], lineRange{file: file, from: from, to: to, subsumedBy: subsumedBy})
}

// suppressed reports whether the diagnostic falls in a registered range.
func (prog *Program) suppressed(d Diagnostic) bool {
	for _, r := range prog.suppress[d.Analyzer] {
		if d.Pos.Filename == r.file && d.Pos.Line >= r.from && d.Pos.Line <= r.to {
			return true
		}
	}
	return false
}

// ProgramPass carries one whole-program analyzer's reporting context.
type ProgramPass struct {
	Analyzer *Analyzer
	Program  *Program

	report func(Diagnostic)
}

// Reportf records a finding at pos unless a //lint:allow comment on that
// line suppresses this analyzer.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Program.Fset.Position(pos)
	key := fmt.Sprintf("%s:%d", position.Filename, position.Line)
	if names, ok := p.Program.allow[key]; ok && (names[p.Analyzer.Name] || names["all"]) {
		return
	}
	p.report(Diagnostic{Pos: position, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}
