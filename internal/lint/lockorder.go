package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// LockOrder builds the global mutex acquisition-order graph across every
// loaded package and reports cycles as potential deadlocks.
//
// Lock classes are instance-insensitive ("planner.Planner.mu" covers
// every Planner): the discipline the repo documents — planner.mu is
// strictly outer to framecache.Cache.mu, framecache never calls back
// into the planner — is exactly a property of classes, not instances.
// For each function and each class A it acquires, an intraprocedural
// held-walk (dataflow.go) finds what happens while A is held:
//
//   - a direct Lock of class B       → edge A→B
//   - a call to g where the call-graph closure says g may acquire B
//     (goroutine spawns excluded: the child's locks are not ours) → A→B
//   - a Lock of A itself through the same receiver spelling → immediate
//     self-deadlock report
//
// Strongly connected components of the edge graph with a cycle are
// reported once per witnessing edge. Single-function lockscope findings
// that fall inside a cyclic critical section are suppressed — the cycle
// report is the root cause, the held-across-blocker finding a symptom
// of the same oversized critical section.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "build the cross-package mutex acquisition-order graph and report cycles as potential " +
		"deadlocks (instance-insensitive classes; call-graph closure for indirect acquisitions)",
	RunProgram: runLockOrder,
}

// lockEdge is one "B acquired while A held" observation.
type lockEdge struct {
	from, to   string
	pos        token.Pos // the acquisition (or call) while from is held
	acquiredAt token.Pos // where from was acquired
	pkg        *Package
	viaCall    string // callee FullName when the edge is indirect
}

func runLockOrder(pass *ProgramPass) error {
	prog := pass.Program
	g := prog.Graph

	// Direct acquisitions per function, then the may-acquire closure.
	direct := make(map[string]map[string]bool)
	for name, node := range g.Nodes {
		body := node.Body()
		if body == nil {
			continue
		}
		for _, class := range classesAcquired(node.Pkg, body) {
			if direct[name] == nil {
				direct[name] = make(map[string]bool)
			}
			direct[name][class] = true
		}
	}
	mayAcquire := reachableClosure(g, direct, true)

	var edges []lockEdge
	for _, name := range g.SortedNames() {
		node := g.Nodes[name]
		body := node.Body()
		if body == nil {
			continue
		}
		for _, classA := range classesAcquired(node.Pkg, body) {
			walkHeld(node.Pkg, body, classA, func(ev heldEvent) {
				switch {
				case ev.Class == classA:
					// Re-acquisition of the held class. Only an exclusive
					// Lock through the identical receiver spelling is a
					// certain self-deadlock; different spellings may be
					// different instances.
					if ev.Method == "Lock" && ev.AcquireMethod == "Lock" && ev.Spell == ev.AcquireSpell {
						pass.Reportf(ev.Call.Pos(),
							"%s locked again while already held (self-deadlock; first acquired at %s)",
							ev.Spell, prog.Fset.Position(ev.AcquiredAt))
					}
				case ev.Class != "":
					if ev.Method == "Lock" || ev.Method == "RLock" {
						edges = append(edges, lockEdge{
							from: classA, to: ev.Class,
							pos: ev.Call.Pos(), acquiredAt: ev.AcquiredAt, pkg: node.Pkg,
						})
					}
				default:
					callee := calleeFullName(node.Pkg.Info, ev.Call)
					if callee == "" {
						return
					}
					for _, classB := range sortedKeys(mayAcquire[callee]) {
						if classB == classA {
							continue
						}
						edges = append(edges, lockEdge{
							from: classA, to: classB,
							pos: ev.Call.Pos(), acquiredAt: ev.AcquiredAt, pkg: node.Pkg,
							viaCall: callee,
						})
					}
				}
			})
		}
	}

	// Cycle detection over the class graph.
	succ := make(map[string]map[string]bool)
	for _, e := range edges {
		if succ[e.from] == nil {
			succ[e.from] = make(map[string]bool)
		}
		succ[e.from][e.to] = true
	}
	cyclic := cyclicClasses(succ)

	for _, e := range edges {
		scc, ok := cyclic[e.from]
		if !ok || scc != cyclic[e.to] {
			continue
		}
		cycle := sccMembers(cyclic, scc)
		via := ""
		if e.viaCall != "" {
			via = fmt.Sprintf(" via call to %s", shortFunc(e.viaCall))
		}
		pass.Reportf(e.pos,
			"lock order cycle: %s acquired%s while %s is held (acquired at %s); cycle: %s",
			shortClass(e.to), via, shortClass(e.from),
			prog.Fset.Position(e.acquiredAt), strings.Join(cycle, " → "))

		// The whole critical section from acquisition to this edge is one
		// reported defect; drop lockscope's symptom findings inside it.
		from := prog.Fset.Position(e.acquiredAt)
		to := prog.Fset.Position(e.pos)
		if from.Filename == to.Filename {
			prog.Suppress("lockscope", from.Filename, from.Line, to.Line, "lockorder")
		}
	}
	return nil
}

// cyclicClasses returns, for every class on a cycle, its SCC id.
// Classes not on any cycle are absent. Tarjan's algorithm, iterative
// input ordering for determinism; a single-node SCC counts only with a
// self-loop.
func cyclicClasses(succ map[string]map[string]bool) map[string]int {
	var order []string
	seen := make(map[string]bool)
	for _, from := range sortedKeys(succ) {
		if !seen[from] {
			seen[from] = true
			order = append(order, from)
		}
		for _, to := range sortedKeys(succ[from]) {
			if !seen[to] {
				seen[to] = true
				order = append(order, to)
			}
		}
	}

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	next := 0
	sccOf := make(map[string]int)
	sccSize := make(map[int]int)
	sccID := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range sortedKeys(succ[v]) {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] {
				if index[w] < low[v] {
					low[v] = index[w]
				}
			}
		}
		if low[v] == index[v] {
			id := sccID
			sccID++
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				sccOf[w] = id
				sccSize[id]++
				if w == v {
					break
				}
			}
		}
	}
	for _, v := range order {
		if _, ok := index[v]; !ok {
			strongconnect(v)
		}
	}

	out := make(map[string]int)
	for v, id := range sccOf {
		if sccSize[id] > 1 || succ[v][v] {
			out[v] = id
		}
	}
	return out
}

// sccMembers lists the short names of the SCC's classes as a cycle
// description "a → b → a".
func sccMembers(cyclic map[string]int, id int) []string {
	var members []string
	for class, scc := range cyclic {
		if scc == id {
			members = append(members, shortClass(class))
		}
	}
	sort.Strings(members)
	return append(members, members[0])
}

// shortClass trims the module path prefix: "mobweb/internal/planner.
// Planner.mu" → "planner.Planner.mu".
func shortClass(class string) string {
	if i := strings.LastIndex(class, "/"); i >= 0 {
		return class[i+1:]
	}
	return class
}

// shortFunc trims package paths inside a FullName:
// "(*mobweb/internal/framecache.Cache).InvalidatePlan" →
// "(*framecache.Cache).InvalidatePlan".
func shortFunc(full string) string {
	if i := strings.LastIndex(full, "/"); i >= 0 {
		prefix := full[:i]
		if j := strings.LastIndexAny(prefix, "(* "); j >= 0 {
			return prefix[:j+1] + full[i+1:]
		}
		return full[i+1:]
	}
	return full
}

// sortedKeys returns the map's keys sorted, nil-safe.
func sortedKeys[V any](m map[string]V) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
