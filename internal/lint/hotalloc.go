package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc guards the PR 4/6 zero-alloc wins: inside functions whose doc
// comment carries //mobweb:hot (the GF(2^8) kernels, CRC, packet
// marshal/parse, the frame-append and frame-write paths), it flags the
// allocation shapes that silently regress AllocsPerRun benchmarks:
//
//   - fmt calls (every verb formats into fresh heap memory)
//   - make() — per-call buffers belong in a reusable scratch or a
//     fixed-size stack array
//   - growing append: appending to anything that is not a caller-
//     provided buffer (the AppendMarshal idiom) or an explicit [:0]
//     reuse of existing capacity
//   - slice/map/pointer composite literals (&T{}, []T{...}); plain
//     value literals T{...} stay on the stack and are exempt
//   - interface boxing: a non-pointer-shaped concrete value passed to
//     an interface parameter heap-allocates the boxed copy
//   - string ↔ []byte conversions
//
// Anything inside a return statement is exempt: error-wrapping exits are
// cold by construction, and hot loops do not return per element. Cold
// branches that still trip the analyzer take a //lint:allow hotalloc.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "flag allocations (fmt, make, growing append, composite literals, interface boxing, " +
		"string conversions) inside //mobweb:hot functions, guarding the zero-alloc send path",
	Run: runHotAlloc,
}

// hotDirective is the //mobweb:hot directive name.
const hotDirective = "hot"

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcDirective(fd, hotDirective) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	// Return statements bound the cold exits.
	var returns []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			returns = append(returns, r)
		}
		return true
	})
	inReturn := func(pos token.Pos) bool {
		for _, r := range returns {
			if pos >= r.Pos() && pos < r.End() {
				return true
			}
		}
		return false
	}

	params := paramVars(pass, fd)

	// Hot-ness covers nested literals too: a closure defined in a hot
	// function (a per-row worker) runs on the same path.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if inReturn(n.Pos()) {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, fd, x, params)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					pass.Reportf(x.Pos(), "&T{} in //mobweb:hot %s heap-allocates; reuse a scratch value instead", fd.Name.Name)
				}
			}
		case *ast.CompositeLit:
			checkHotComposite(pass, fd, x)
		}
		return true
	})
}

// paramVars collects the function's parameters (incl. receiver and
// results): appending to any of them is the caller-owns-the-buffer
// idiom, not a hot-path allocation.
func paramVars(pass *Pass, fd *ast.FuncDecl) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if v, ok := pass.Info.Defs[name].(*types.Var); ok {
					out[v] = true
				}
			}
		}
	}
	add(fd.Recv)
	if fd.Type != nil {
		add(fd.Type.Params)
		add(fd.Type.Results)
	}
	return out
}

func checkHotCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, params map[*types.Var]bool) {
	// Builtins first: make and growing append.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, builtin := pass.Info.Uses[id].(*types.Builtin); builtin {
			switch id.Name {
			case "make":
				pass.Reportf(call.Pos(), "make in //mobweb:hot %s allocates per call; hoist to a reusable scratch buffer or a fixed-size stack array", fd.Name.Name)
			case "append":
				if len(call.Args) > 0 && !reusesCapacity(pass, call.Args[0], params) {
					pass.Reportf(call.Pos(), "growing append in //mobweb:hot %s: target is neither a caller-provided buffer nor a [:0] reuse, so it reallocates as it grows", fd.Name.Name)
				}
			}
			return
		}
	}

	// Conversions: string([]byte) / []byte(string) copy.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type.Underlying()
		from := pass.Info.Types[call.Args[0]].Type
		if from != nil && isStringBytesConv(to, from.Underlying()) {
			pass.Reportf(call.Pos(), "string/[]byte conversion in //mobweb:hot %s copies the data; keep one representation on the hot path", fd.Name.Name)
		}
		return
	}

	fn := calleeFunc(pass.Info, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s in //mobweb:hot %s allocates for every verb; format off the hot path", fn.Name(), fd.Name.Name)
		return
	}

	checkBoxing(pass, fd, call)
}

// checkBoxing flags concrete, non-pointer-shaped arguments passed to
// interface parameters: the conversion heap-allocates the boxed value.
// Pointer-shaped kinds (pointers, chans, maps, funcs) fit the interface
// data word directly and are exempt.
func checkBoxing(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	nparams := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= nparams-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			pt = sig.Params().At(nparams - 1).Type()
			if s, ok := pt.Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < nparams:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := pass.Info.Types[arg].Type
		if at == nil || types.IsInterface(at) || isPointerShaped(at) || isUntypedNil(pass, arg) {
			continue
		}
		pass.Reportf(arg.Pos(), "%s value boxed into interface parameter in //mobweb:hot %s (allocates); pass a pointer or keep the call off the hot path", at.String(), fd.Name.Name)
	}
}

func checkHotComposite(pass *Pass, fd *ast.FuncDecl, lit *ast.CompositeLit) {
	t := pass.Info.Types[lit].Type
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		pass.Reportf(lit.Pos(), "slice literal in //mobweb:hot %s allocates; hoist it to a package-level table or a stack array", fd.Name.Name)
	case *types.Map:
		pass.Reportf(lit.Pos(), "map literal in //mobweb:hot %s allocates; hoist it out of the hot path", fd.Name.Name)
	}
	// &T{...} is caught through the composite's address being taken.
}

// reusesCapacity reports whether the append target provably reuses
// existing storage: a (possibly sliced) function parameter, or an
// explicit x[:0] / x[:n] re-slice of anything.
func reusesCapacity(pass *Pass, target ast.Expr, params map[*types.Var]bool) bool {
	switch x := ast.Unparen(target).(type) {
	case *ast.SliceExpr:
		return true // append(buf[:0], ...) — the reuse idiom
	case *ast.Ident:
		if v, ok := pass.Info.Uses[x].(*types.Var); ok {
			return params[v]
		}
	}
	return false
}

// isStringBytesConv reports a conversion between string and []byte in
// either direction (both copy).
func isStringBytesConv(to, from types.Type) bool {
	return (isString(to) && isByteSlice(from)) || (isByteSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	return ok && isByte(s.Elem())
}

// isPointerShaped reports whether values of t fit an interface's data
// word without a heap copy.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}

func isUntypedNil(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.IsNil()
}
