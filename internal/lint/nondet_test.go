package lint_test

import (
	"strings"
	"testing"

	"mobweb/internal/lint"
	"mobweb/internal/lint/linttest"
)

const nondetFixture = "mobweb/internal/lint/testdata/src/nondet"

func TestNonDet(t *testing.T) {
	defer linttest.Override(&lint.NondetPackages, []string{nondetFixture})()
	linttest.Run(t, lint.NonDet, "./testdata/src/nondet")
}

// When the impure helper package is loaded alongside the fixture, the
// call-graph closure must carry its wall-clock read back to the call
// site inside the deterministic package — a helper package cannot
// smuggle a clock in.
func TestNonDetSeesThroughHelperPackages(t *testing.T) {
	defer linttest.Override(&lint.NondetPackages, []string{nondetFixture})()
	diags, err := lint.Run(".",
		[]string{"./testdata/src/nondet", "./testdata/src/nondet/impure"},
		[]*lint.Analyzer{lint.NonDet})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "impure.Stamp") && strings.Contains(d.Message, "wall-clock read time.Now") {
			found = true
		}
		// The source inside impure itself is outside the deterministic
		// set and must not be reported there.
		if strings.Contains(d.Pos.Filename, "impure") {
			t.Errorf("diagnostic inside the non-deterministic helper package: %s", d)
		}
	}
	if !found {
		t.Errorf("no indirect finding for the call into impure.Stamp; got: %v", diags)
	}
}
