package lint_test

import (
	"testing"

	"mobweb/internal/lint"
	"mobweb/internal/lint/linttest"
)

func TestErrWrap(t *testing.T) {
	const fixture = "mobweb/internal/lint/testdata/src/errwrap"
	lint.ErrwrapPackages[fixture] = true
	defer delete(lint.ErrwrapPackages, fixture)
	linttest.Run(t, lint.ErrWrap, "./testdata/src/errwrap")
}

// Outside the boundary packages the analyzer must stay silent even for
// chain-severing Errorf calls: the same fixture, NOT registered in
// ErrwrapPackages, must produce zero diagnostics.
func TestErrWrapIgnoresNonBoundaryPackages(t *testing.T) {
	diags, err := lint.Run(".", []string{"./testdata/src/errwrap"}, []*lint.Analyzer{lint.ErrWrap})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic outside the boundary: %s", d)
	}
}
