package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// decodeListOutput consumes the JSON stream `go list -deps -export
// -json` writes: dependencies first (DepOnly, with export data), then
// the targets.
func TestDecodeListOutput(t *testing.T) {
	out := []byte(`{
	"ImportPath": "example.com/dep",
	"Dir": "/cache/dep",
	"Export": "/cache/dep.a",
	"DepOnly": true
}
{
	"ImportPath": "example.com/b",
	"Dir": "/src/b",
	"GoFiles": ["b.go"],
	"Export": "/cache/b.a"
}
{
	"ImportPath": "example.com/a",
	"Dir": "/src/a",
	"GoFiles": ["a.go", "a2.go"]
}
`)
	exports, targets, err := decodeListOutput(out)
	if err != nil {
		t.Fatal(err)
	}
	if exports["example.com/dep"] != "/cache/dep.a" || exports["example.com/b"] != "/cache/b.a" {
		t.Errorf("export index wrong: %v", exports)
	}
	if _, ok := exports["example.com/a"]; ok {
		t.Error("package without export data must not be indexed")
	}
	if len(targets) != 2 {
		t.Fatalf("DepOnly packages must not be targets; got %d targets", len(targets))
	}
	if targets[0].ImportPath != "example.com/a" || targets[1].ImportPath != "example.com/b" {
		t.Errorf("targets must be sorted by import path: %v, %v", targets[0].ImportPath, targets[1].ImportPath)
	}
	if len(targets[0].GoFiles) != 2 {
		t.Errorf("GoFiles lost in decoding: %v", targets[0].GoFiles)
	}
}

func TestDecodeListOutputSurfacesPackageErrors(t *testing.T) {
	out := []byte(`{"ImportPath": "example.com/broken", "Error": {"Err": "import cycle not allowed"}}`)
	if _, _, err := decodeListOutput(out); err == nil || !strings.Contains(err.Error(), "import cycle") {
		t.Errorf("per-package error must surface, got: %v", err)
	}
	if _, _, err := decodeListOutput([]byte("not json")); err == nil {
		t.Error("malformed go list output must error, not half-load")
	}
}

func TestExportLookupMissing(t *testing.T) {
	lookup := exportLookup(map[string]string{})
	if _, err := lookup("example.com/ghost"); err == nil || !strings.Contains(err.Error(), `no export data for "example.com/ghost"`) {
		t.Errorf("missing export data must name the package, got: %v", err)
	}
}

func TestLoadBadPattern(t *testing.T) {
	if _, err := Load(".", "./does-not-exist"); err == nil {
		t.Error("loading a nonexistent pattern must fail")
	}
}

// A module with an import cycle must fail the load with the go list
// error, not a partial program.
func TestLoadImportCycle(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module cycletest\n\ngo 1.21\n")
	write("a/a.go", "package a\n\nimport \"cycletest/b\"\n\nfunc A() { b.B() }\n")
	write("b/b.go", "package b\n\nimport \"cycletest/a\"\n\nfunc B() { a.A() }\n")
	if _, err := Load(dir, "./..."); err == nil {
		t.Error("an import cycle must fail the load")
	}
}

// The loader must handle stdlib packages whose dependency closure
// includes vendored modules (net/http pulls vendored golang.org/x/net):
// go list reports them under their vendored import paths with their own
// export files, and type-checking the target against that export data
// must succeed.
func TestLoadVendoredStdlib(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the net/http dependency closure")
	}
	pkgs, err := Load(".", "net/http/internal/ascii")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].PkgPath != "net/http/internal/ascii" {
		t.Fatalf("unexpected load result: %+v", pkgs)
	}
	// The real vendored case: net/http itself imports
	// vendor/golang.org/x/net/http/httpguts and friends.
	pkgs, err = Load(".", "net/http")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Types == nil || pkgs[0].Types.Scope().Lookup("Server") == nil {
		t.Fatal("net/http did not type-check against its vendored deps' export data")
	}
}
