package lint_test

import (
	"testing"

	"mobweb/internal/lint"
	"mobweb/internal/lint/linttest"
)

func TestGoroLeak(t *testing.T) {
	linttest.Run(t, lint.GoroLeak, "./testdata/src/goroleak")
}

// The transport package carries the historic leaked-reader fix and the
// textproc pipeline carries reviewed //lint:allow annotations; both must
// stay clean so the analyzer's noise floor stays at zero.
func TestGoroLeakCleanOnTransportAndTextproc(t *testing.T) {
	diags, err := lint.Run(".", []string{"mobweb/internal/transport", "mobweb/internal/textproc"}, []*lint.Analyzer{lint.GoroLeak})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
