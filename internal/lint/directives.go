package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Comment directives: the `//mobweb:<name>` convention shared by the
// nondet and hotalloc analyzers (and open to future ones). Unlike
// //lint:allow — which suppresses an already-raised finding on one line
// — a mobweb directive changes what an analyzer looks at:
//
//	//mobweb:nondet-ok <reason>   this line, or this whole function, is
//	                              genuinely wall-clock/random; nondet
//	                              must not flag it
//	//mobweb:hot <reason>         this function is a hot path; hotalloc
//	                              must flag allocations inside it
//
// Line form: the directive sits on (or immediately above) the code it
// covers. Function form: the directive is a line of the function's doc
// comment and covers the whole body. The reason text after the name is
// for humans and is not parsed. See DESIGN.md §13.

// directivePrefix introduces every machine-readable mobweb directive.
const directivePrefix = "//mobweb:"

// directiveIndex resolves line-level directives across every file of a
// load (keys are "file:line", like the //lint:allow index, so packages
// can share one).
type directiveIndex struct {
	lines map[string]map[string]bool
}

// buildDirectives scans file comments for //mobweb: directives. A
// directive covers the line it sits on; a directive comment alone on a
// line covers the following line too, so it can sit above long
// statements:
//
//	//mobweb:nondet-ok cook-time stats
//	start := time.Now()
func buildDirectives(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{lines: make(map[string]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				idx.add(pos.Filename, pos.Line, name)
				if pos.Column == 1 || isCommentOnlyLine(fset, f, c) {
					idx.add(pos.Filename, pos.Line+1, name)
				}
			}
		}
	}
	return idx
}

func (d *directiveIndex) add(file string, line int, name string) {
	key := fmt.Sprintf("%s:%d", file, line)
	if d.lines[key] == nil {
		d.lines[key] = make(map[string]bool)
	}
	d.lines[key][name] = true
}

// onLine reports whether the named directive covers the position's line.
func (d *directiveIndex) onLine(pos token.Position, name string) bool {
	if d == nil {
		return false
	}
	return d.lines[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)][name]
}

// parseDirective splits "//mobweb:nondet-ok herd avoidance" into its
// name ("nondet-ok"); the reason text is for humans only.
func parseDirective(text string) (name string, ok bool) {
	rest, ok := strings.CutPrefix(text, directivePrefix)
	if !ok {
		return "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", false
	}
	return fields[0], true
}

// funcDirective reports whether the function's doc comment carries the
// named directive, covering the whole body:
//
//	// deadline computes the per-operation I/O deadline.
//	//mobweb:nondet-ok deadlines are wall-clock by nature
//	func (c *Client) deadline(ctx context.Context) time.Time { ... }
func funcDirective(fd *ast.FuncDecl, name string) bool {
	if fd == nil || fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if got, ok := parseDirective(c.Text); ok && got == name {
			return true
		}
	}
	return false
}

// isCommentOnlyLine reports whether the comment is the only thing on its
// line (a directive above the covered statement rather than trailing it).
// It is approximated by the comment starting in column ≤ the file's
// typical indentation — in practice, by there being no declaration or
// statement token earlier on the same line, which the parser encodes by
// attaching such comments as leading comment groups. The check here is
// positional: nothing non-blank precedes the comment on its line.
func isCommentOnlyLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	pos := fset.Position(c.Pos())
	// A trailing comment follows code, so some node of the file ends on
	// the same line before the comment starts. Scanning the whole file
	// per comment would be quadratic; instead use the comment's column:
	// gofmt places trailing comments after at least one tab or space
	// beyond column 1, while standalone comments start the line (at any
	// indentation, but with only whitespace before them). The parser
	// gives no direct "standalone" bit, so check the file content via
	// the fset's line start.
	tf := fset.File(c.Pos())
	if tf == nil {
		return false
	}
	lineStart := tf.LineStart(pos.Line)
	// If every position between line start and the comment is part of no
	// AST node, the prefix is whitespace. Approximate by asking whether
	// any statement/expression in the file *ends* in that interval.
	standalone := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || standalone == false {
			return false
		}
		if n.End() > lineStart && n.End() <= c.Pos() {
			if _, isComment := n.(*ast.Comment); !isComment {
				if _, isGroup := n.(*ast.CommentGroup); !isGroup {
					standalone = false
				}
			}
		}
		return standalone
	})
	return standalone
}
