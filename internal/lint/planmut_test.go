package lint_test

import (
	"testing"

	"mobweb/internal/lint"
	"mobweb/internal/lint/linttest"
)

func TestPlanMutSharedSlices(t *testing.T) {
	linttest.Run(t, lint.PlanMut, "./testdata/src/planmut")
}

func TestPlanMutOwnerPackage(t *testing.T) {
	defer linttest.Override(&lint.PlanOwnerPackage, "mobweb/internal/lint/testdata/src/planmutowner")()
	linttest.Run(t, lint.PlanMut, "./testdata/src/planmutowner")
}

// The real owner package must satisfy its own analyzer: every
// Plan/generation field write in core sits in a constructor or in
// ensureParity.
func TestPlanMutCleanOnCore(t *testing.T) {
	diags, err := lint.Run(".", []string{"mobweb/internal/core"}, []*lint.Analyzer{lint.PlanMut})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic in core: %s", d)
	}
}
