package lint_test

import (
	"testing"

	"mobweb/internal/lint"
	"mobweb/internal/lint/linttest"
)

func TestLockScope(t *testing.T) {
	linttest.Run(t, lint.LockScope, "./testdata/src/lockscope")
}

// The planner is the reference implementation of the discipline this
// analyzer enforces (it drops p.mu around core.NewPlan); transport
// carries the fix for the Server.Close finding. Both must stay clean.
func TestLockScopeCleanOnPlannerAndTransport(t *testing.T) {
	diags, err := lint.Run(".", []string{"mobweb/internal/planner", "mobweb/internal/transport"}, []*lint.Analyzer{lint.LockScope})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
