package corpus

import (
	"math"
	"testing"

	"mobweb/internal/content"
	"mobweb/internal/document"
	"mobweb/internal/textproc"
)

func TestNamesIncludesDraft(t *testing.T) {
	names := Names()
	found := false
	for _, n := range names {
		if n == DraftName {
			found = true
		}
	}
	if !found {
		t.Fatalf("draft.xml missing from corpus: %v", names)
	}
}

func TestLoadDraftStructure(t *testing.T) {
	d, err := Load(DraftName)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	secs, err := d.UnitsAt(document.LODSection)
	if err != nil {
		t.Fatal(err)
	}
	// Abstract + Introduction + Related Work + MRT + FT + Evaluation +
	// Discussion = 7 sections, mirroring the paper's own structure.
	if len(secs) != 7 {
		t.Fatalf("draft has %d sections, want 7", len(secs))
	}
	if secs[0].Title != "Abstract" {
		t.Errorf("section 0 = %q, want Abstract", secs[0].Title)
	}
	if len(d.Paragraphs()) < 15 {
		t.Errorf("draft has %d paragraphs, suspiciously few", len(d.Paragraphs()))
	}
}

func TestDraftTable1Reproduction(t *testing.T) {
	// Regenerate Table 1's computation on the reconstructed draft with
	// the paper's query Q = {browsing, mobile, web} and check its
	// signature properties.
	d, err := Load(DraftName)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := textproc.BuildIndex(d, textproc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := content.Build(d, idx)
	if err != nil {
		t.Fatal(err)
	}
	q := textproc.QueryVector("browsing mobile web")
	s := sc.Evaluate(q)

	// Document-level scores are all 1.
	for _, notion := range []content.Notion{content.NotionIC, content.NotionQIC, content.NotionMQIC} {
		if got := s.Get(notion, d.Root.ID); math.Abs(got-1) > 1e-9 {
			t.Errorf("%v(document) = %v, want 1", notion, got)
		}
	}

	secs, err := d.UnitsAt(document.LODSection)
	if err != nil {
		t.Fatal(err)
	}
	// The introduction (mobile/web/browsing-heavy) must gain share under
	// QIC relative to IC, like section 1 in Table 1 (0.118 → 0.332).
	intro := secs[1]
	if s.QIC[intro.ID] <= s.IC[intro.ID] {
		t.Errorf("QIC(intro) = %v not above IC = %v", s.QIC[intro.ID], s.IC[intro.ID])
	}
	// At least one unit somewhere must have QIC == 0 but MQIC > 0 — the
	// Table 1 signature of units missing every querying word.
	signature := false
	for _, u := range d.Units() {
		if s.QIC[u.ID] == 0 && s.MQIC[u.ID] > 0 {
			signature = true
			break
		}
	}
	if !signature {
		t.Error("no unit exhibits QIC=0 with MQIC>0; Table 1 signature missing")
	}
}

func TestLoadHTML(t *testing.T) {
	d, err := Load("mobile-survey.html")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Paragraphs()) < 5 {
		t.Errorf("survey page has %d paragraphs, want >= 5", len(d.Paragraphs()))
	}
}

func TestLoadAll(t *testing.T) {
	docs, err := LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) < 2 {
		t.Fatalf("corpus has %d documents, want >= 2", len(docs))
	}
	for _, d := range docs {
		if d.Size() == 0 {
			t.Errorf("document %s has zero size", d.Name)
		}
	}
}

func TestLoadUnknownExtension(t *testing.T) {
	if _, err := Load("nope.txt"); err == nil {
		t.Error("unknown extension accepted")
	}
}

func TestRawMissing(t *testing.T) {
	if _, err := Raw("missing.xml"); err == nil {
		t.Error("missing file accepted")
	}
}
