// Package corpus embeds the sample document collection used by the
// examples, the Table 1 regenerator, and the live transport demos. The
// centerpiece is draft.xml, a reconstruction of the paper's own early
// draft whose structural characteristic Table 1 tabulates.
package corpus

import (
	"bytes"
	"embed"
	"fmt"
	"io/fs"
	"sort"
	"strings"

	"mobweb/internal/document"
	"mobweb/internal/markup"
)

//go:embed *.xml *.html
var files embed.FS

// DraftName is the name of the embedded draft manuscript.
const DraftName = "draft.xml"

// Names lists the embedded document names, sorted.
func Names() []string {
	entries, err := fs.ReadDir(files, ".")
	if err != nil {
		// The embedded FS is compiled in; a read failure is impossible
		// short of a toolchain bug.
		panic(err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names
}

// Raw returns the raw bytes of an embedded document.
func Raw(name string) ([]byte, error) {
	data, err := files.ReadFile(name)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	return data, nil
}

// Load parses an embedded document into the structured model, choosing
// the XML or HTML parser by extension.
func Load(name string) (*document.Document, error) {
	data, err := Raw(name)
	if err != nil {
		return nil, err
	}
	switch {
	case strings.HasSuffix(name, ".xml"):
		return markup.ParseXML(bytes.NewReader(data), name, markup.DefaultTagMap())
	case strings.HasSuffix(name, ".html"):
		return markup.ParseHTML(bytes.NewReader(data), name)
	default:
		return nil, fmt.Errorf("corpus: unsupported extension in %q", name)
	}
}

// LoadAll parses every embedded document.
func LoadAll() ([]*document.Document, error) {
	names := Names()
	docs := make([]*document.Document, 0, len(names))
	for _, n := range names {
		d, err := Load(n)
		if err != nil {
			return nil, err
		}
		docs = append(docs, d)
	}
	return docs, nil
}
