package cluster

import (
	"math"
	"testing"

	"mobweb/internal/document"
)

func makeDoc(t *testing.T, name string, paragraphs ...string) *document.Document {
	t.Helper()
	b := document.NewBuilder()
	b.Open(document.LODSection, "", "")
	for _, p := range paragraphs {
		b.Paragraph(p)
	}
	d, err := b.Build(name, name)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// paperCluster builds: index → {overview, details}; overview → {details}.
// The details page is the query-relevant one.
func paperCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := New("site", "index.xml")
	if err != nil {
		t.Fatal(err)
	}
	add := func(doc *document.Document, links ...string) {
		t.Helper()
		if err := c.AddPage(doc, links); err != nil {
			t.Fatal(err)
		}
	}
	add(makeDoc(t, "index.xml",
		"Welcome to the site map with navigation pointers."), "overview.xml", "details.xml")
	add(makeDoc(t, "overview.xml",
		"General overview of topics including some mobile notes."), "details.xml")
	add(makeDoc(t, "details.xml",
		"Mobile web browsing details: wireless mobile transmission for mobile browsing clients."))
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", "root"); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := New("c", ""); err == nil {
		t.Error("empty root accepted")
	}
}

func TestAddPageNil(t *testing.T) {
	c, err := New("c", "r")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddPage(nil, nil); err == nil {
		t.Error("nil document accepted")
	}
}

func TestValidate(t *testing.T) {
	c := paperCluster(t)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d, want 3", c.Len())
	}
}

func TestValidateMissingRoot(t *testing.T) {
	c, err := New("c", "missing.xml")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddPage(makeDoc(t, "page.xml", "text"), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err == nil {
		t.Error("missing root accepted")
	}
}

func TestValidateDanglingLink(t *testing.T) {
	c, err := New("c", "a.xml")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddPage(makeDoc(t, "a.xml", "text"), []string{"ghost.xml"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err == nil {
		t.Error("dangling link accepted")
	}
}

func TestValidateUnreachable(t *testing.T) {
	c, err := New("c", "a.xml")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddPage(makeDoc(t, "a.xml", "text"), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPage(makeDoc(t, "island.xml", "isolated"), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err == nil {
		t.Error("unreachable page accepted")
	}
}

func TestScoresSumToOne(t *testing.T) {
	c := paperCluster(t)
	scores, err := c.Scores(nil)
	if err != nil {
		t.Fatal(err)
	}
	sumIC := 0.0
	for _, s := range scores {
		sumIC += s.IC
	}
	if math.Abs(sumIC-1) > 1e-9 {
		t.Errorf("cluster IC sums to %v, want 1", sumIC)
	}
}

func TestScoresQICFavorsRelevantPage(t *testing.T) {
	c := paperCluster(t)
	q := map[string]int{"mobile": 1, "browse": 1}
	scores, err := c.Scores(q)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]PageScore, len(scores))
	sumQIC := 0.0
	for _, s := range scores {
		byName[s.Name] = s
		sumQIC += s.QIC
	}
	if math.Abs(sumQIC-1) > 1e-9 {
		t.Errorf("cluster QIC sums to %v, want 1", sumQIC)
	}
	if byName["details.xml"].QIC <= byName["index.xml"].QIC {
		t.Errorf("details QIC %v not above index %v",
			byName["details.xml"].QIC, byName["index.xml"].QIC)
	}
	if byName["index.xml"].QIC != 0 {
		t.Errorf("index page QIC = %v, want 0 (no query words)", byName["index.xml"].QIC)
	}
}

func TestReadingOrderStartsAtRoot(t *testing.T) {
	c := paperCluster(t)
	q := map[string]int{"mobile": 1}
	order, err := c.ReadingOrder(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 {
		t.Fatalf("order %v, want all 3 pages", order)
	}
	if order[0] != "index.xml" {
		t.Errorf("order starts at %q, want the root", order[0])
	}
	// The query-relevant details page must come before the overview.
	if order[1] != "details.xml" {
		t.Errorf("order[1] = %q, want details.xml (highest QIC among linked)", order[1])
	}
}

func TestReadingOrderRespectsReachability(t *testing.T) {
	// deep.xml has huge relevance but is only reachable through mid.xml;
	// it cannot be read first.
	c, err := New("chain", "top.xml")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddPage(makeDoc(t, "top.xml", "table of contents"), []string{"mid.xml"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPage(makeDoc(t, "mid.xml", "navigation filler"), []string{"deep.xml"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPage(makeDoc(t, "deep.xml",
		"mobile mobile mobile browsing browsing wireless"), nil); err != nil {
		t.Fatal(err)
	}
	order, err := c.ReadingOrder(map[string]int{"mobile": 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"top.xml", "mid.xml", "deep.xml"}
	for i, name := range want {
		if order[i] != name {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestPrefetchCandidates(t *testing.T) {
	c := paperCluster(t)
	q := map[string]int{"mobile": 1}
	cands, err := c.PrefetchCandidates("index.xml", q, 64, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 {
		t.Fatalf("got %d candidates, want 2 links", len(cands))
	}
	if cands[0].Name != "details.xml" {
		t.Errorf("top candidate %q, want the query-relevant details page", cands[0].Name)
	}
	for _, cand := range cands {
		if cand.TotalPackets < cand.UsefulPackets || cand.UsefulPackets < 1 {
			t.Errorf("candidate %+v has inconsistent packet counts", cand)
		}
	}
}

func TestPrefetchCandidatesValidation(t *testing.T) {
	c := paperCluster(t)
	if _, err := c.PrefetchCandidates("ghost.xml", nil, 64, 1.5); err == nil {
		t.Error("unknown page accepted")
	}
	if _, err := c.PrefetchCandidates("index.xml", nil, 0, 1.5); err == nil {
		t.Error("zero packet size accepted")
	}
	if _, err := c.PrefetchCandidates("index.xml", nil, 64, 0.5); err == nil {
		t.Error("gamma < 1 accepted")
	}
}

func TestPageAccessor(t *testing.T) {
	c := paperCluster(t)
	if _, ok := c.Page("index.xml"); !ok {
		t.Error("Page lookup failed")
	}
	if _, ok := c.Page("ghost.xml"); ok {
		t.Error("ghost page found")
	}
	if c.Root() != "index.xml" || c.Name() != "site" {
		t.Error("accessors broken")
	}
}
