package cluster

import (
	"fmt"

	"mobweb/internal/document"
)

// Compose flattens the cluster into one super-document, realizing the
// paper's "collection of hierarchically linked related pages, composing a
// larger document" literally: each page becomes a section titled with the
// page title, holding the page's paragraph text. The pages appear in the
// content-first reading order for the given query, so even the composed
// document's *document-order* is already multi-resolution at the page
// granularity; unit-level FT-MRT machinery (plans, QIC ranking,
// erasure transmission) then applies unchanged to the whole cluster.
func (c *Cluster) Compose(queryVec map[string]int) (*document.Document, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	order, err := c.ReadingOrder(queryVec)
	if err != nil {
		return nil, err
	}
	root := &document.Unit{Level: document.LODDocument}
	for _, name := range order {
		page := c.pages[name]
		sec := &document.Unit{
			Level: document.LODSection,
			Title: page.Doc.Title,
		}
		// Graft the page's paragraph leaves under the section. The
		// page's own internal sections become subsections to preserve
		// one extra structural level where present.
		for _, child := range page.Doc.Root.Children {
			sec.Children = append(sec.Children, demote(child))
		}
		root.Children = append(root.Children, sec)
	}
	relabelComposed(root)
	title := c.name
	if rootPage, ok := c.pages[c.root]; ok && rootPage.Doc.Title != "" {
		title = rootPage.Doc.Title
	}
	return document.New("cluster:"+c.name, title, root)
}

// demote deep-copies a unit subtree one structural level finer, flooring
// at the paragraph level.
func demote(u *document.Unit) *document.Unit {
	level := u.Level
	switch level {
	case document.LODSection:
		level = document.LODSubsection
	case document.LODSubsection:
		level = document.LODSubsubsection
	case document.LODSubsubsection, document.LODParagraph:
		level = document.LODParagraph
	}
	out := &document.Unit{
		Level:      level,
		Title:      u.Title,
		Text:       u.Text,
		Emphasized: append([]string(nil), u.Emphasized...),
	}
	if level == document.LODParagraph {
		// Paragraphs cannot hold children; splice descendants' text.
		if text := u.OwnAndDescendantText(); text != "" {
			out.Text = text
		}
		return out
	}
	for _, child := range u.Children {
		out.Children = append(out.Children, demote(child))
	}
	return out
}

// relabelComposed assigns hierarchical labels to the composed tree.
func relabelComposed(root *document.Unit) {
	var walk func(u *document.Unit)
	walk = func(u *document.Unit) {
		for i, c := range u.Children {
			if u.Level == document.LODDocument {
				c.Label = fmt.Sprintf("%d", i)
			} else {
				c.Label = fmt.Sprintf("%s.%d", u.Label, i)
			}
			walk(c)
		}
	}
	walk(root)
}
