// Package cluster models the paper's larger browsing unit: "by a
// document, it is not only referred to as simply a single web page, but
// it may also include a collection of hierarchically linked related
// pages, composing a larger document" (§1). A Cluster groups pages under
// a root, computes cluster-level information content with the same
// keyword-weighting machinery used inside a single document (pages play
// the role of organizational units of the super-document), and produces
// prefetch candidates for the pages linked from the one being read —
// feeding §6's "intelligent prefetching … with respect to a collection of
// related pages in the form of a cluster".
package cluster

import (
	"fmt"
	"sort"

	"mobweb/internal/content"
	"mobweb/internal/document"
	"mobweb/internal/prefetch"
	"mobweb/internal/textproc"
)

// Page is one document in a cluster with its outgoing links.
type Page struct {
	// Doc is the page's structured document.
	Doc *document.Document
	// Index is the page's keyword index.
	Index *textproc.Index
	// Links names the pages this one links to, in document order.
	Links []string
}

// Cluster is a root page plus the pages reachable from it.
type Cluster struct {
	name  string
	root  string
	pages map[string]*Page
}

// New starts an empty cluster whose entry point will be rootName.
func New(name, rootName string) (*Cluster, error) {
	if name == "" || rootName == "" {
		return nil, fmt.Errorf("cluster: empty name or root")
	}
	return &Cluster{name: name, root: rootName, pages: make(map[string]*Page)}, nil
}

// Name returns the cluster name.
func (c *Cluster) Name() string { return c.name }

// Root returns the root page name.
func (c *Cluster) Root() string { return c.root }

// Len returns the number of pages.
func (c *Cluster) Len() int { return len(c.pages) }

// AddPage indexes a document into the cluster with its outgoing links.
// Re-adding a name replaces the page.
func (c *Cluster) AddPage(doc *document.Document, links []string) error {
	if doc == nil {
		return fmt.Errorf("cluster: nil document")
	}
	idx, err := textproc.BuildIndex(doc, textproc.Options{})
	if err != nil {
		return err
	}
	c.pages[doc.Name] = &Page{
		Doc:   doc,
		Index: idx,
		Links: append([]string(nil), links...),
	}
	return nil
}

// Page returns a page by name.
func (c *Cluster) Page(name string) (*Page, bool) {
	p, ok := c.pages[name]
	return p, ok
}

// Validate checks the cluster invariants: the root exists, every link
// resolves to a page, and every page is reachable from the root (the
// "hierarchically linked" property).
func (c *Cluster) Validate() error {
	if _, ok := c.pages[c.root]; !ok {
		return fmt.Errorf("cluster %s: root %q missing", c.name, c.root)
	}
	for name, p := range c.pages {
		for _, l := range p.Links {
			if _, ok := c.pages[l]; !ok {
				return fmt.Errorf("cluster %s: page %q links to unknown %q", c.name, name, l)
			}
		}
	}
	reach := make(map[string]bool, len(c.pages))
	var visit func(string)
	visit = func(name string) {
		if reach[name] {
			return
		}
		reach[name] = true
		for _, l := range c.pages[name].Links {
			visit(l)
		}
	}
	visit(c.root)
	for name := range c.pages {
		if !reach[name] {
			return fmt.Errorf("cluster %s: page %q unreachable from root", c.name, name)
		}
	}
	return nil
}

// PageScore is one page's cluster-level information content.
type PageScore struct {
	// Name is the page.
	Name string
	// IC is the page's share of the cluster's information content; all
	// pages sum to 1 (additive rule lifted to the cluster level).
	IC float64
	// QIC is the query-based share; zero when the page misses every
	// querying word.
	QIC float64
}

// Scores computes per-page IC and QIC over the whole cluster: keyword
// weights come from the cluster-wide occurrence vector, so a keyword
// that is rare across the cluster weighs more, exactly as a rare keyword
// does within one document.
func (c *Cluster) Scores(queryVec map[string]int) ([]PageScore, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	// Cluster-wide occurrence vector.
	total := make(map[string]int)
	for _, p := range c.pages {
		for w, n := range p.Index.Doc {
			total[w] += n
		}
	}
	weights := content.Weights(total)
	qWeights := content.Weights(queryVec)

	var denomIC, denomQIC float64
	for w, n := range total {
		denomIC += float64(n) * weights[w]
		if qw, ok := qWeights[w]; ok {
			denomQIC += float64(n) * weights[w] * qw
		}
	}
	out := make([]PageScore, 0, len(c.pages))
	for name, p := range c.pages {
		var numIC, numQIC float64
		for w, n := range p.Index.Doc {
			numIC += float64(n) * weights[w]
			if qw, ok := qWeights[w]; ok {
				numQIC += float64(n) * weights[w] * qw
			}
		}
		s := PageScore{Name: name}
		if denomIC > 0 {
			s.IC = numIC / denomIC
		}
		if denomQIC > 0 {
			s.QIC = numQIC / denomQIC
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].IC != out[j].IC {
			return out[i].IC > out[j].IC
		}
		return out[i].Name < out[j].Name
	})
	return out, nil
}

// ReadingOrder returns the pages in a content-first traversal: starting
// from the root, always descend into the highest-scoring reachable
// unvisited page — multi-resolution browsing lifted to the cluster, while
// respecting that a user can only follow links they have seen.
func (c *Cluster) ReadingOrder(queryVec map[string]int) ([]string, error) {
	scores, err := c.Scores(queryVec)
	if err != nil {
		return nil, err
	}
	rank := make(map[string]float64, len(scores))
	for _, s := range scores {
		v := s.QIC
		if len(queryVec) == 0 {
			v = s.IC
		}
		rank[s.Name] = v
	}
	visited := make(map[string]bool, len(c.pages))
	frontier := map[string]bool{c.root: true}
	order := make([]string, 0, len(c.pages))
	for len(frontier) > 0 {
		// Pick the best frontier page (ties by name for determinism).
		best := ""
		for name := range frontier {
			if best == "" || rank[name] > rank[best] ||
				(rank[name] == rank[best] && name < best) {
				best = name
			}
		}
		delete(frontier, best)
		visited[best] = true
		order = append(order, best)
		for _, l := range c.pages[best].Links {
			if !visited[l] {
				frontier[l] = true
			}
		}
	}
	return order, nil
}

// PrefetchCandidates converts the links of the current page into
// prefetch candidates scored by cluster-level QIC (falling back to IC for
// empty queries), with packet counts derived from each page's size.
func (c *Cluster) PrefetchCandidates(current string, queryVec map[string]int, packetSize int, gamma float64) ([]prefetch.Candidate, error) {
	page, ok := c.pages[current]
	if !ok {
		return nil, fmt.Errorf("cluster %s: unknown page %q", c.name, current)
	}
	if packetSize < 1 {
		return nil, fmt.Errorf("cluster: packet size %d", packetSize)
	}
	if gamma < 1 {
		return nil, fmt.Errorf("cluster: gamma %v", gamma)
	}
	scores, err := c.Scores(queryVec)
	if err != nil {
		return nil, err
	}
	rank := make(map[string]float64, len(scores))
	for _, s := range scores {
		v := s.QIC
		if len(queryVec) == 0 {
			v = s.IC
		}
		rank[s.Name] = v
	}
	out := make([]prefetch.Candidate, 0, len(page.Links))
	for _, l := range page.Links {
		target := c.pages[l]
		m := (target.Doc.Size() + packetSize - 1) / packetSize
		n := int(float64(m)*gamma + 0.999999)
		out = append(out, prefetch.Candidate{
			Name:          l,
			Score:         rank[l],
			TotalPackets:  n,
			UsefulPackets: m,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out, nil
}
