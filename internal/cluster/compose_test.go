package cluster

import (
	"strings"
	"testing"

	"mobweb/internal/content"
	"mobweb/internal/core"
	"mobweb/internal/document"
	"mobweb/internal/textproc"
)

func TestComposeStructure(t *testing.T) {
	c := paperCluster(t)
	q := map[string]int{"mobile": 1}
	doc, err := c.Compose(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	secs, err := doc.UnitsAt(document.LODSection)
	if err != nil {
		t.Fatal(err)
	}
	if len(secs) != 3 {
		t.Fatalf("composed document has %d sections, want one per page", len(secs))
	}
	// Pages appear in reading order: root first, then the query-relevant
	// details page.
	if secs[0].Title != "index.xml" {
		t.Errorf("first section %q, want the root page", secs[0].Title)
	}
	if secs[1].Title != "details.xml" {
		t.Errorf("second section %q, want the relevant page", secs[1].Title)
	}
}

func TestComposeCarriesAllText(t *testing.T) {
	c := paperCluster(t)
	doc, err := c.Compose(nil)
	if err != nil {
		t.Fatal(err)
	}
	body := string(doc.Body())
	for _, fragment := range []string{"site map", "General overview", "wireless mobile transmission"} {
		if !strings.Contains(body, fragment) {
			t.Errorf("composed body missing %q", fragment)
		}
	}
}

func TestComposeInvalidCluster(t *testing.T) {
	c, err := New("broken", "missing.xml")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddPage(makeDoc(t, "page.xml", "text"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Compose(nil); err == nil {
		t.Error("invalid cluster composed")
	}
}

func TestComposeDemotesInternalStructure(t *testing.T) {
	// A page with its own section must become subsection-level inside
	// the composed super-document.
	c, err := New("deep", "root.xml")
	if err != nil {
		t.Fatal(err)
	}
	b := document.NewBuilder()
	b.Open(document.LODSection, "", "Inner Section")
	b.Paragraph("inner paragraph text")
	inner, err := b.Build("root.xml", "Root Page")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddPage(inner, nil); err != nil {
		t.Fatal(err)
	}
	doc, err := c.Compose(nil)
	if err != nil {
		t.Fatal(err)
	}
	var found *document.Unit
	doc.Root.Walk(func(u *document.Unit) bool {
		if u.Title == "Inner Section" {
			found = u
			return false
		}
		return true
	})
	if found == nil {
		t.Fatal("inner section lost")
	}
	if found.Level != document.LODSubsection {
		t.Errorf("inner section level %v, want subsection", found.Level)
	}
}

func TestComposedClusterTransmitsEndToEnd(t *testing.T) {
	// The headline property: a whole linked site rides the FT-MRT
	// machinery as one document.
	c := paperCluster(t)
	qv := textproc.QueryVector("mobile browsing")
	doc, err := c.Compose(qv)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := textproc.BuildIndex(doc, textproc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := content.Build(doc, idx)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.NewPlan(sc, qv, core.Config{
		LOD:        document.LODSection, // page granularity
		Notion:     content.NotionQIC,
		PacketSize: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := core.NewReceiver(plan)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 0; seq < plan.N(); seq++ {
		frame, err := plan.Frame(seq)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := rcv.AddFrame(frame); err != nil {
			t.Fatal(err)
		}
		if rcv.Reconstructible() {
			break
		}
	}
	body, err := rcv.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "wireless mobile transmission") {
		t.Error("cluster content lost in transmission")
	}
	// The top-ranked section of the plan must be the query-relevant
	// page, ahead of the index page.
	top := plan.Segments()[0]
	if top.Unit.Title != "details.xml" {
		t.Errorf("top-ranked page %q, want details.xml", top.Unit.Title)
	}
}
