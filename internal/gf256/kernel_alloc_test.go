package gf256

import "testing"

// TestKernelsAllocationFree pins the hotalloc contract of the slice
// kernels: the fused-rows accumulation (and the two-operand forms it is
// built from) must not touch the heap, for any kernel. tableMulAddRows
// once made three slices per call to compact its coefficients — per
// parity row, per frame — which this test would have caught.
func TestKernelsAllocationFree(t *testing.T) {
	const (
		size = 4096
		rows = 7 // exercises the 4-, 2- and 1-row tails of the fused kernel
	)
	dst := make([]byte, size)
	srcs := make([][]byte, rows)
	coeffs := make([]byte, rows)
	for j := range srcs {
		srcs[j] = make([]byte, size)
		for i := range srcs[j] {
			srcs[j][i] = byte(i*(j+3) + j)
		}
		coeffs[j] = byte(7*j + 2)
	}
	coeffs[2] = 0 // compaction path
	coeffs[4] = 1 // identity-coefficient path

	prev := KernelName()
	defer func() {
		if err := SetKernel(prev); err != nil {
			t.Fatalf("restoring kernel %q: %v", prev, err)
		}
	}()
	for _, name := range KernelNames() {
		if err := SetKernel(name); err != nil {
			t.Fatalf("SetKernel(%q): %v", name, err)
		}
		checks := []struct {
			op string
			fn func()
		}{
			{"MulAddRows", func() { MulAddRows(coeffs, dst, srcs) }},
			{"MulAddSlice", func() { MulAddSlice(0x53, dst, srcs[0]) }},
			{"MulSlice", func() { MulSlice(0x1d, dst, srcs[1]) }},
			{"AddSlice", func() { AddSlice(dst, srcs[3]) }},
		}
		for _, c := range checks {
			if allocs := testing.AllocsPerRun(50, c.fn); allocs != 0 {
				t.Errorf("kernel %s: %s allocates %.1f times per call, want 0", name, c.op, allocs)
			}
		}
	}
}
