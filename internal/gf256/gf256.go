// Package gf256 implements arithmetic over the finite field GF(2^8).
//
// The field is realized as polynomials over GF(2) modulo the primitive
// polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the same representation
// used by Reed-Solomon codecs. All 255 non-zero elements are powers of
// the generator 0x02, which lets multiplication and division run through
// logarithm/exponential tables.
//
// The package is the arithmetic substrate for the information-dispersal
// erasure code (Rabin 1989) that the fault-tolerant multi-resolution
// transmission scheme relies on: cooked packets are GF(256)-linear
// combinations of raw packets.
package gf256

// Poly is the primitive reduction polynomial for the field,
// x^8 + x^4 + x^3 + x^2 + 1.
const Poly = 0x11D

// Generator is a primitive element of the field; every non-zero field
// element is a power of it.
const Generator = 0x02

// Order is the number of elements in the field.
const Order = 256

// tables bundles the log/exp lookup tables so they can be produced by a
// single deterministic computation instead of init() side effects.
type tables struct {
	exp [2 * 255]byte // exp[i] = Generator^i, doubled to avoid mod 255
	log [256]byte     // log[x] with log[0] unused
}

var _tables = genTables()

// genTables builds the discrete log/exp tables by repeated multiplication
// by the generator with carry-less reduction by Poly.
func genTables() tables {
	var t tables
	x := 1
	for i := 0; i < 255; i++ {
		t.exp[i] = byte(x)
		t.exp[i+255] = byte(x)
		t.log[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= Poly
		}
	}
	return t
}

// Add returns a + b in GF(2^8). Addition is XOR; it is its own inverse,
// so Sub is identical.
func Add(a, b byte) byte { return a ^ b }

// Sub returns a - b in GF(2^8); identical to Add because the field has
// characteristic 2.
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a * b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return _tables.exp[int(_tables.log[a])+int(_tables.log[b])]
}

// Div returns a / b in GF(2^8). Division by zero panics, mirroring the
// behaviour of integer division: it indicates a programming error in the
// caller (the erasure decoder never divides by a zero pivot once a matrix
// has passed its invertibility check).
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	diff := int(_tables.log[a]) - int(_tables.log[b])
	if diff < 0 {
		diff += 255
	}
	return _tables.exp[diff]
}

// Inv returns the multiplicative inverse of a. Inv(0) panics.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return _tables.exp[255-int(_tables.log[a])]
}

// Exp returns Generator^k for any non-negative k.
func Exp(k int) byte {
	if k < 0 {
		panic("gf256: negative exponent")
	}
	return _tables.exp[k%255]
}

// Log returns the discrete logarithm of a to base Generator.
// Log(0) panics because zero has no logarithm.
func Log(a byte) int {
	if a == 0 {
		panic("gf256: log of zero")
	}
	return int(_tables.log[a])
}

// Pow returns a^k in GF(2^8) with the convention a^0 == 1 (including 0^0).
func Pow(a byte, k int) byte {
	if k == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	if k < 0 {
		panic("gf256: negative exponent")
	}
	return _tables.exp[(int(_tables.log[a])*k)%255]
}

// MulSlice multiplies every byte of src by c and stores the result in dst.
// dst and src must have equal length; they may alias. The byte work runs
// through the selected slice kernel (see kernel.go).
func MulSlice(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: MulSlice length mismatch")
	}
	if c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	activeKernel.Load().mulSlice(c, dst, src)
}

// MulAddSlice computes dst[i] ^= c * src[i] for every index, the classic
// "axpy" kernel of the erasure encoder. dst and src must have equal length
// and must not alias unless they are identical slices with c == 0. The
// byte work runs through the selected slice kernel (see kernel.go); c == 1
// degenerates to a word-wise XOR with no table work.
func MulAddSlice(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: MulAddSlice length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		xorSlice(dst, src)
		return
	}
	activeKernel.Load().mulAdd(c, dst, src)
}

// MulAddRows computes dst[i] ^= Σ_j coeffs[j]*srcs[j][i] — one dispersal
// row applied to all of its source packets in a single call. Fusing the
// sources lets the table kernel amortize the dst read-modify-write across
// up to four sources per pass, the dominant cost of repeated MulAddSlice
// calls; it is the encode/decode row primitive of the erasure codec.
// Every source must have dst's length, and none may alias dst.
func MulAddRows(coeffs []byte, dst []byte, srcs [][]byte) {
	if len(coeffs) != len(srcs) {
		panic("gf256: MulAddRows coefficient/source count mismatch")
	}
	for _, s := range srcs {
		if len(s) != len(dst) {
			panic("gf256: MulAddRows length mismatch")
		}
	}
	activeKernel.Load().mulAddRows(coeffs, dst, srcs)
}

// AddSlice computes dst[i] ^= src[i] for every index (field addition is
// XOR), eight bytes per iteration.
func AddSlice(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: AddSlice length mismatch")
	}
	xorSlice(dst, src)
}
