package gf256

import "testing"

// FuzzKernels is the cross-kernel equivalence fuzzer: for arbitrary
// coefficients and payloads, every registered kernel must agree
// byte-for-byte with the scalar Mul oracle on MulSlice, MulAddSlice and
// MulAddRows. The kernels are driven through the public wrappers (which
// own the degenerate c == 0 / c == 1 cases) because that is the contract
// the erasure codec relies on. The payload is split in two so the rows
// form exercises multiple source slices with distinct contents.
func FuzzKernels(f *testing.F) {
	f.Add(byte(0), byte(0), []byte{})
	f.Add(byte(1), byte(2), []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(byte(29), byte(255), []byte("weakly-connected browsing!"))
	f.Add(byte(142), byte(113), make([]byte, 65))
	f.Fuzz(func(t *testing.T, c1, c2 byte, payload []byte) {
		half := len(payload) / 2
		a, b := payload[:half], payload[half:half*2]

		// Scalar oracles.
		wantMul := make([]byte, half)
		wantAdd := make([]byte, half)
		wantRows := make([]byte, half)
		for i := 0; i < half; i++ {
			wantMul[i] = Mul(c1, a[i])
			wantAdd[i] = b[i] ^ Mul(c1, a[i])
			wantRows[i] = Mul(c1, a[i]) ^ Mul(c2, b[i])
		}

		prev := activeKernel.Load()
		defer activeKernel.Store(prev)
		for _, k := range kernels {
			activeKernel.Store(k)

			got := make([]byte, half)
			MulSlice(c1, got, a)
			for i := range got {
				if got[i] != wantMul[i] {
					t.Fatalf("%s MulSlice(c=%d)[%d] = %d, want %d", k.name, c1, i, got[i], wantMul[i])
				}
			}

			copy(got, b)
			MulAddSlice(c1, got, a)
			for i := range got {
				if got[i] != wantAdd[i] {
					t.Fatalf("%s MulAddSlice(c=%d)[%d] = %d, want %d", k.name, c1, i, got[i], wantAdd[i])
				}
			}

			for i := range got {
				got[i] = 0
			}
			MulAddRows([]byte{c1, c2}, got, [][]byte{a, b})
			for i := range got {
				if got[i] != wantRows[i] {
					t.Fatalf("%s MulAddRows(c=[%d %d])[%d] = %d, want %d", k.name, c1, c2, i, got[i], wantRows[i])
				}
			}
		}
	})
}
