package gf256

import (
	"fmt"
	"testing"
)

// benchKernels runs fn once per registered kernel as a sub-benchmark,
// restoring the active kernel afterwards. SetBytes is left to fn.
func benchKernels(b *testing.B, fn func(b *testing.B)) {
	prev := activeKernel.Load()
	defer activeKernel.Store(prev)
	for _, k := range kernels {
		k := k
		b.Run(k.name, func(b *testing.B) {
			activeKernel.Store(k)
			fn(b)
		})
	}
}

// BenchmarkKernelMulAddSlice is the two-operand axpy that the acceptance
// criterion measures: MulAddSlice on 4 KiB payloads, per kernel.
func BenchmarkKernelMulAddSlice(b *testing.B) {
	for _, size := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			src := testPattern(size, 1)
			dst := testPattern(size, 2)
			benchKernels(b, func(b *testing.B) {
				b.SetBytes(int64(size))
				for i := 0; i < b.N; i++ {
					MulAddSlice(byte(i)|2, dst, src)
				}
			})
		})
	}
}

// BenchmarkKernelMulAddRows is the fused row primitive the codec actually
// runs: four source rows folded into one destination pass.
func BenchmarkKernelMulAddRows(b *testing.B) {
	const rows = 4
	for _, size := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			dst := testPattern(size, 0)
			srcs := make([][]byte, rows)
			coeffs := make([]byte, rows)
			for j := range srcs {
				srcs[j] = testPattern(size, j+1)
				coeffs[j] = byte(0x53 + 2*j)
			}
			benchKernels(b, func(b *testing.B) {
				b.SetBytes(int64(size * rows))
				for i := 0; i < b.N; i++ {
					MulAddRows(coeffs, dst, srcs)
				}
			})
		})
	}
}

func BenchmarkAddSlice(b *testing.B) {
	const size = 4096
	src := testPattern(size, 1)
	dst := testPattern(size, 2)
	b.SetBytes(size)
	for i := 0; i < b.N; i++ {
		AddSlice(dst, src)
	}
}
