package gf256

import (
	"bytes"
	"testing"
)

// withKernel runs fn once per registered kernel, restoring the previously
// active implementation afterwards.
func withKernel(t *testing.T, fn func(t *testing.T, k *kernel)) {
	t.Helper()
	prev := activeKernel.Load()
	defer activeKernel.Store(prev)
	for _, k := range kernels {
		k := k
		t.Run(k.name, func(t *testing.T) {
			activeKernel.Store(k)
			fn(t, k)
		})
	}
}

// testPattern fills a deterministic but irregular byte pattern covering
// zero bytes, high bytes and every residue class.
func testPattern(n, seed int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*(2*seed+3) + seed*7)
	}
	return b
}

func TestKernelNames(t *testing.T) {
	names := KernelNames()
	want := []string{"logexp", "table", "nibble"}
	if len(names) != len(want) {
		t.Fatalf("KernelNames() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("KernelNames() = %v, want %v", names, want)
		}
	}
	found := false
	for _, n := range names {
		if n == KernelName() {
			found = true
		}
	}
	if !found {
		t.Fatalf("active kernel %q not in KernelNames() %v", KernelName(), names)
	}
}

func TestSetKernel(t *testing.T) {
	prev := KernelName()
	defer func() {
		if err := SetKernel(prev); err != nil {
			t.Fatalf("restoring kernel %q: %v", prev, err)
		}
	}()
	for _, name := range KernelNames() {
		if err := SetKernel(name); err != nil {
			t.Fatalf("SetKernel(%q): %v", name, err)
		}
		if got := KernelName(); got != name {
			t.Fatalf("KernelName() = %q after SetKernel(%q)", got, name)
		}
	}
	if err := SetKernel("no-such-kernel"); err == nil {
		t.Fatal("SetKernel with an unknown name did not error")
	}
	for _, auto := range []string{"auto", ""} {
		if err := SetKernel(auto); err != nil {
			t.Fatalf("SetKernel(%q): %v", auto, err)
		}
	}
}

func TestChooseKernelEnv(t *testing.T) {
	for _, k := range kernels {
		if got := chooseKernel(k.name); got != k {
			t.Errorf("chooseKernel(%q) = %q", k.name, got.name)
		}
	}
	// Unknown and empty values calibrate; the winner must be registered.
	for _, env := range []string{"", "auto", "bogus"} {
		got := chooseKernel(env)
		ok := false
		for _, k := range kernels {
			if got == k {
				ok = true
			}
		}
		if !ok {
			t.Errorf("chooseKernel(%q) returned unregistered kernel %q", env, got.name)
		}
	}
}

// TestKernelsAgainstScalar checks every kernel's three primitives against
// scalar Mul for a range of lengths (covering the 8-byte SWAR tail) and
// coefficients, including the degenerate 0 and 1.
func TestKernelsAgainstScalar(t *testing.T) {
	lengths := []int{0, 1, 7, 8, 9, 15, 16, 17, 63, 64, 255, 256, 1024}
	coeffs := []byte{0, 1, 2, 3, 29, 113, 142, 200, 254, 255}
	withKernel(t, func(t *testing.T, k *kernel) {
		for _, n := range lengths {
			src := testPattern(n, 1)
			for _, c := range coeffs {
				// MulSlice.
				dst := testPattern(n, 2)
				MulSlice(c, dst, src)
				for i := range src {
					if want := Mul(c, src[i]); dst[i] != want {
						t.Fatalf("%s MulSlice(c=%d, n=%d)[%d] = %d, want %d",
							k.name, c, n, i, dst[i], want)
					}
				}
				// MulAddSlice.
				dst = testPattern(n, 2)
				orig := append([]byte(nil), dst...)
				MulAddSlice(c, dst, src)
				for i := range src {
					if want := orig[i] ^ Mul(c, src[i]); dst[i] != want {
						t.Fatalf("%s MulAddSlice(c=%d, n=%d)[%d] = %d, want %d",
							k.name, c, n, i, dst[i], want)
					}
				}
			}
		}
	})
}

// TestMulAddRowsAgainstScalar exercises the fused row primitive for every
// kernel across row counts that hit the 4/2/1 unrolling tails and rows
// with zero and one coefficients interleaved.
func TestMulAddRowsAgainstScalar(t *testing.T) {
	lengths := []int{0, 1, 8, 17, 256, 1024}
	withKernel(t, func(t *testing.T, k *kernel) {
		for _, n := range lengths {
			for rows := 0; rows <= 9; rows++ {
				srcs := make([][]byte, rows)
				coeffs := make([]byte, rows)
				for j := range srcs {
					srcs[j] = testPattern(n, j+1)
					// Interleave zero, one and general coefficients.
					switch j % 3 {
					case 0:
						coeffs[j] = 0
					case 1:
						coeffs[j] = 1
					default:
						coeffs[j] = byte(37*j + 5)
					}
				}
				dst := testPattern(n, 0)
				want := append([]byte(nil), dst...)
				for j := range srcs {
					for i := range want {
						want[i] ^= Mul(coeffs[j], srcs[j][i])
					}
				}
				MulAddRows(coeffs, dst, srcs)
				if !bytes.Equal(dst, want) {
					t.Fatalf("%s MulAddRows(rows=%d, n=%d) mismatch", k.name, rows, n)
				}
			}
		}
	})
}

func TestMulAddRowsPanics(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("coeff count mismatch", func() {
		MulAddRows([]byte{1, 2}, make([]byte, 8), [][]byte{make([]byte, 8)})
	})
	assertPanics("source length mismatch", func() {
		MulAddRows([]byte{1}, make([]byte, 8), [][]byte{make([]byte, 7)})
	})
}

func TestXorSlice(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 17, 64, 100} {
		dst := testPattern(n, 3)
		src := testPattern(n, 5)
		want := make([]byte, n)
		for i := range want {
			want[i] = dst[i] ^ src[i]
		}
		xorSlice(dst, src)
		if !bytes.Equal(dst, want) {
			t.Fatalf("xorSlice(n=%d) mismatch", n)
		}
	}
}

// TestMulTablesConsistent pins the product tables to scalar Mul, including
// the nibble decomposition identity c*x == c*(x&15) ^ c*(x&0xF0).
func TestMulTablesConsistent(t *testing.T) {
	for c := 0; c < 256; c++ {
		for x := 0; x < 256; x++ {
			want := Mul(byte(c), byte(x))
			if got := _mul.full[c][x]; got != want {
				t.Fatalf("full[%d][%d] = %d, want %d", c, x, got, want)
			}
			if got := _mul.lo[c][x&15] ^ _mul.hi[c][x>>4]; got != want {
				t.Fatalf("lo/hi[%d][%d] = %d, want %d", c, x, got, want)
			}
		}
	}
}

func TestCalibrateReturnsRegisteredKernel(t *testing.T) {
	got := calibrate()
	for _, k := range kernels {
		if got == k {
			return
		}
	}
	t.Fatalf("calibrate() returned unregistered kernel %q", got.name)
}
