package gf256

// The slice kernels below are the only GF(2^8) code on the transmission
// hot path: every byte of every cooked packet flows through MulAddSlice
// (encode) or MulAddRows (encode and decode), so their cost decides how
// fast the erasure codec can feed a channel. Three interchangeable
// implementations are provided, all pure Go:
//
//   - logexp: the original log/exp-table reference — a branch plus two
//     dependent table lookups per byte. Kept as the cross-checked oracle
//     every other kernel must agree with byte-for-byte (see FuzzKernels).
//   - table: a flat 64 KiB product table mulTable[c][x]. For a fixed
//     coefficient the inner loop touches one 256-byte row with a single
//     independent branch-free lookup per byte, gathering eight products
//     at a time into 64-bit destination words; its fused MulAddRows form
//     folds up to four source rows into one destination pass, amortizing
//     the dst read-modify-write that dominates repeated two-operand
//     calls.
//   - nibble: split 4-bit tables (mulLo[c][x&15] ^ mulHi[c][x>>4], 8 KiB
//     total — resident in L1 no matter how many coefficients alternate)
//     with an inner loop that processes 8 bytes per iteration through
//     uint64 loads and XORs.
//
// One kernel is selected at init by a micro-calibration benchmark over
// the fused-rows workload (the shape the codec actually runs) and can be
// pinned with the MOBWEB_GF_KERNEL environment variable or SetKernel.

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync/atomic"
	"time"
)

// EnvKernel is the environment variable that pins the slice kernel:
// "logexp", "table" or "nibble" force that implementation; "auto" (or
// unset, or any unrecognized value) selects by micro-calibration.
const EnvKernel = "MOBWEB_GF_KERNEL"

// kernel bundles one implementation of the three slice primitives. All
// functions may assume equal-length, non-aliasing slices and c >= 2 for
// the two-operand forms — the public wrappers handle validation and the
// degenerate c == 0 / c == 1 cases.
type kernel struct {
	name string
	// mulAdd computes dst[i] ^= c*src[i].
	mulAdd func(c byte, dst, src []byte)
	// mulSlice computes dst[i] = c*src[i].
	mulSlice func(c byte, dst, src []byte)
	// mulAddRows computes dst[i] ^= Σ_j coeffs[j]*srcs[j][i], the row
	// accumulation of the erasure encoder/decoder. Implementations must
	// handle zero and one coefficients themselves.
	mulAddRows func(coeffs []byte, dst []byte, srcs [][]byte)
}

// mulTables holds the product tables shared by the table and nibble
// kernels, produced by one deterministic computation like the log/exp
// tables.
type mulTables struct {
	full [256][256]byte // full[c][x] = c*x (64 KiB)
	lo   [256][16]byte  // lo[c][x] = c*x for x in [0,16)
	hi   [256][16]byte  // hi[c][x] = c*(x<<4)
}

var _mul = genMulTables()

func genMulTables() *mulTables {
	t := &mulTables{}
	for c := 0; c < 256; c++ {
		for x := 0; x < 256; x++ {
			t.full[c][x] = Mul(byte(c), byte(x))
		}
		for x := 0; x < 16; x++ {
			t.lo[c][x] = Mul(byte(c), byte(x))
			t.hi[c][x] = Mul(byte(c), byte(x<<4))
		}
	}
	return t
}

// kernels lists every implementation, reference first.
var kernels = []*kernel{kernelLogExp, kernelTable, kernelNibble}

// activeKernel is the selected implementation; reads are one atomic load
// per slice call, negligible next to the per-byte work.
var activeKernel atomic.Pointer[kernel]

func init() {
	activeKernel.Store(chooseKernel(os.Getenv(EnvKernel)))
}

// KernelName reports the active slice-kernel implementation.
func KernelName() string { return activeKernel.Load().name }

// KernelNames lists the available implementations in registration order
// (reference first).
func KernelNames() []string {
	names := make([]string, len(kernels))
	for i, k := range kernels {
		names[i] = k.name
	}
	return names
}

// SetKernel pins the slice kernel by name ("logexp", "table", "nibble"),
// or re-runs calibration for "auto" / "". It is safe to call
// concurrently with running kernels: in-flight slice operations finish
// on the previous implementation, which computes identical bytes.
func SetKernel(name string) error {
	if name == "" || name == "auto" {
		activeKernel.Store(calibrate())
		return nil
	}
	for _, k := range kernels {
		if k.name == name {
			activeKernel.Store(k)
			return nil
		}
	}
	return fmt.Errorf("gf256: unknown kernel %q (have %v)", name, KernelNames())
}

// chooseKernel resolves the env knob: a known name pins that kernel,
// anything else (including unset and "auto") calibrates.
func chooseKernel(env string) *kernel {
	for _, k := range kernels {
		if k.name == env {
			return k
		}
	}
	return calibrate()
}

// calibrate times each kernel on the fused-rows workload the codec runs
// (4 source rows into one destination, 4 KiB payloads) and returns the
// fastest. The whole benchmark moves ~1.5 MB per kernel, well under a
// millisecond — cheap enough for process init, long enough to rank the
// implementations reliably on the hardware at hand.
//
//mobweb:nondet-ok kernel choice affects speed, never GF(2^8) results
func calibrate() *kernel {
	const (
		size   = 4096
		rows   = 4
		passes = 8
		trials = 3
	)
	dst := make([]byte, size)
	srcs := make([][]byte, rows)
	coeffs := make([]byte, rows)
	for j := range srcs {
		srcs[j] = make([]byte, size)
		for i := range srcs[j] {
			srcs[j][i] = byte(i*(2*j+3) + j + 1)
		}
		coeffs[j] = byte(0x53 + 2*j)
	}
	best, bestTime := kernels[0], time.Duration(1<<62)
	for _, k := range kernels {
		trial := time.Duration(1 << 62)
		for t := 0; t < trials; t++ {
			start := time.Now()
			for p := 0; p < passes; p++ {
				k.mulAddRows(coeffs, dst, srcs)
			}
			if d := time.Since(start); d < trial {
				trial = d
			}
		}
		if trial < bestTime {
			best, bestTime = k, trial
		}
	}
	return best
}

// ---- logexp: the reference kernel ----

var kernelLogExp = &kernel{
	name:     "logexp",
	mulAdd:   logExpMulAdd,
	mulSlice: logExpMulSlice,
	mulAddRows: func(coeffs []byte, dst []byte, srcs [][]byte) {
		pairwiseRows(logExpMulAdd, coeffs, dst, srcs)
	},
}

//mobweb:hot reference kernel; still runs per byte when calibration picks it
func logExpMulAdd(c byte, dst, src []byte) {
	logC := int(_tables.log[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= _tables.exp[logC+int(_tables.log[s])]
		}
	}
}

//mobweb:hot reference kernel; still runs per byte when calibration picks it
func logExpMulSlice(c byte, dst, src []byte) {
	logC := int(_tables.log[c])
	for i, s := range src {
		if s == 0 {
			dst[i] = 0
			continue
		}
		dst[i] = _tables.exp[logC+int(_tables.log[s])]
	}
}

// pairwiseRows is the generic row accumulation: one two-operand pass per
// coefficient, with the degenerate coefficients peeled off.
//mobweb:hot row accumulation for the logexp and nibble kernels
func pairwiseRows(mulAdd func(byte, []byte, []byte), coeffs []byte, dst []byte, srcs [][]byte) {
	for j, c := range coeffs {
		switch c {
		case 0:
		case 1:
			xorSlice(dst, srcs[j])
		default:
			mulAdd(c, dst, srcs[j])
		}
	}
}

// ---- table: flat 64 KiB product table ----

var kernelTable = &kernel{
	name:       "table",
	mulAdd:     tableMulAdd,
	mulSlice:   tableMulSlice,
	mulAddRows: tableMulAddRows,
}

// The table loops below gather the products of 8 source bytes into one
// 64-bit word: eight independent 256-byte-row lookups (bounds-check
// free — the indices are bytes) packed with shifts, then a single
// word-wide destination update. That halves the per-byte memory traffic
// of the naive dst[i] ^= row[src[i]] loop, which spends a load and a
// store on dst for every byte — on scalar hardware these kernels are
// bound by memory ports, not by the table arithmetic. The gather bodies
// are written out inline in each loop: as functions they blow the
// inliner budget, and a call (plus slice-header setup) per 8 bytes
// costs more than the gather saves.

// tableMulAdd works 16 bytes per iteration as two independent 8-byte
// gathers whose accumulation chains overlap in the pipeline.
//mobweb:hot every byte of every cooked packet flows through here
func tableMulAdd(c byte, dst, src []byte) {
	row := &_mul.full[c]
	n := len(src) &^ 15
	i := 0
	for ; i < n; i += 16 {
		s := src[i : i+16 : i+16]
		a := uint64(row[s[0]]) | uint64(row[s[1]])<<8 | uint64(row[s[2]])<<16 | uint64(row[s[3]])<<24 |
			uint64(row[s[4]])<<32 | uint64(row[s[5]])<<40 | uint64(row[s[6]])<<48 | uint64(row[s[7]])<<56
		b := uint64(row[s[8]]) | uint64(row[s[9]])<<8 | uint64(row[s[10]])<<16 | uint64(row[s[11]])<<24 |
			uint64(row[s[12]])<<32 | uint64(row[s[13]])<<40 | uint64(row[s[14]])<<48 | uint64(row[s[15]])<<56
		d1 := binary.LittleEndian.Uint64(dst[i:])
		d2 := binary.LittleEndian.Uint64(dst[i+8:])
		binary.LittleEndian.PutUint64(dst[i:], d1^a)
		binary.LittleEndian.PutUint64(dst[i+8:], d2^b)
	}
	for ; i < len(src); i++ {
		dst[i] ^= row[src[i]]
	}
}

//mobweb:hot every byte of every cooked packet flows through here
func tableMulSlice(c byte, dst, src []byte) {
	row := &_mul.full[c]
	n := len(src) &^ 15
	i := 0
	for ; i < n; i += 16 {
		s := src[i : i+16 : i+16]
		a := uint64(row[s[0]]) | uint64(row[s[1]])<<8 | uint64(row[s[2]])<<16 | uint64(row[s[3]])<<24 |
			uint64(row[s[4]])<<32 | uint64(row[s[5]])<<40 | uint64(row[s[6]])<<48 | uint64(row[s[7]])<<56
		b := uint64(row[s[8]]) | uint64(row[s[9]])<<8 | uint64(row[s[10]])<<16 | uint64(row[s[11]])<<24 |
			uint64(row[s[12]])<<32 | uint64(row[s[13]])<<40 | uint64(row[s[14]])<<48 | uint64(row[s[15]])<<56
		binary.LittleEndian.PutUint64(dst[i:], a)
		binary.LittleEndian.PutUint64(dst[i+8:], b)
	}
	for ; i < len(src); i++ {
		dst[i] = row[src[i]]
	}
}

// tableMulAddRows folds source rows four (then two, then one) at a time
// into a single destination pass of 64-bit gathered words. Fusing
// matters because the two-operand loop is dominated by the dst
// read-modify-write: four fused sources cost one dst pass instead of
// four. Zero coefficients are compacted away first; c == 1 needs no
// special case (row 1 of the product table is the identity).
//mobweb:hot per parity row per frame; feeds the zero-alloc send path
func tableMulAddRows(coeffs []byte, dst []byte, srcs [][]byte) {
	if len(coeffs) > 256 {
		// A GF(2^8) code has at most 255 rows, so this cannot happen for
		// field-valid systems; stay correct for callers that try anyway.
		pairwiseRows(tableMulAdd, coeffs, dst, srcs)
		return
	}
	// Compact the non-zero terms into fixed-size stack arrays. This used
	// to make three slices per call — per parity row, per frame — which
	// the hotalloc analyzer flagged: the send path's AllocsPerRun gates
	// budget zero for kernel work.
	live := 0
	var rows [256]*[256]byte
	var data [256][]byte
	var cc [256]byte
	for j, c := range coeffs {
		if c == 0 {
			continue
		}
		rows[live] = &_mul.full[c]
		data[live] = srcs[j][:len(dst)]
		cc[live] = c
		live++
	}
	j := 0
	for ; j+4 <= live; j += 4 {
		r1, r2, r3, r4 := rows[j], rows[j+1], rows[j+2], rows[j+3]
		s1, s2, s3, s4 := data[j], data[j+1], data[j+2], data[j+3]
		n := len(dst) &^ 7
		i := 0
		for ; i < n; i += 8 {
			a := s1[i : i+8 : i+8]
			b := s2[i : i+8 : i+8]
			c := s3[i : i+8 : i+8]
			e := s4[i : i+8 : i+8]
			v := uint64(r1[a[0]]^r2[b[0]]^r3[c[0]]^r4[e[0]]) |
				uint64(r1[a[1]]^r2[b[1]]^r3[c[1]]^r4[e[1]])<<8 |
				uint64(r1[a[2]]^r2[b[2]]^r3[c[2]]^r4[e[2]])<<16 |
				uint64(r1[a[3]]^r2[b[3]]^r3[c[3]]^r4[e[3]])<<24 |
				uint64(r1[a[4]]^r2[b[4]]^r3[c[4]]^r4[e[4]])<<32 |
				uint64(r1[a[5]]^r2[b[5]]^r3[c[5]]^r4[e[5]])<<40 |
				uint64(r1[a[6]]^r2[b[6]]^r3[c[6]]^r4[e[6]])<<48 |
				uint64(r1[a[7]]^r2[b[7]]^r3[c[7]]^r4[e[7]])<<56
			d := binary.LittleEndian.Uint64(dst[i:])
			binary.LittleEndian.PutUint64(dst[i:], d^v)
		}
		for ; i < len(dst); i++ {
			dst[i] ^= r1[s1[i]] ^ r2[s2[i]] ^ r3[s3[i]] ^ r4[s4[i]]
		}
	}
	if j+2 <= live {
		r1, r2 := rows[j], rows[j+1]
		s1, s2 := data[j], data[j+1]
		n := len(dst) &^ 7
		i := 0
		for ; i < n; i += 8 {
			a := s1[i : i+8 : i+8]
			b := s2[i : i+8 : i+8]
			v := uint64(r1[a[0]]^r2[b[0]]) | uint64(r1[a[1]]^r2[b[1]])<<8 |
				uint64(r1[a[2]]^r2[b[2]])<<16 | uint64(r1[a[3]]^r2[b[3]])<<24 |
				uint64(r1[a[4]]^r2[b[4]])<<32 | uint64(r1[a[5]]^r2[b[5]])<<40 |
				uint64(r1[a[6]]^r2[b[6]])<<48 | uint64(r1[a[7]]^r2[b[7]])<<56
			d := binary.LittleEndian.Uint64(dst[i:])
			binary.LittleEndian.PutUint64(dst[i:], d^v)
		}
		for ; i < len(dst); i++ {
			dst[i] ^= r1[s1[i]] ^ r2[s2[i]]
		}
		j += 2
	}
	if j < live {
		tableMulAdd(cc[j], dst, data[j])
	}
}

// ---- nibble: split 4-bit tables, 8 bytes per iteration ----

var kernelNibble = &kernel{
	name:     "nibble",
	mulAdd:   nibbleMulAdd,
	mulSlice: nibbleMulSlice,
	mulAddRows: func(coeffs []byte, dst []byte, srcs [][]byte) {
		pairwiseRows(nibbleMulAdd, coeffs, dst, srcs)
	},
}

// nibbleProduct assembles the products of 8 packed source bytes from the
// two 16-entry nibble tables. Go's precedence makes s>>k&15 parse as
// (s>>k)&15.
//mobweb:hot inner gather of the nibble kernel, called once per 8 bytes
func nibbleProduct(lo, hi *[16]byte, s uint64) uint64 {
	return uint64(lo[s&15]^hi[s>>4&15]) |
		uint64(lo[s>>8&15]^hi[s>>12&15])<<8 |
		uint64(lo[s>>16&15]^hi[s>>20&15])<<16 |
		uint64(lo[s>>24&15]^hi[s>>28&15])<<24 |
		uint64(lo[s>>32&15]^hi[s>>36&15])<<32 |
		uint64(lo[s>>40&15]^hi[s>>44&15])<<40 |
		uint64(lo[s>>48&15]^hi[s>>52&15])<<48 |
		uint64(lo[s>>56&15]^hi[s>>60&15])<<56
}

//mobweb:hot every byte of every cooked packet flows through here
func nibbleMulAdd(c byte, dst, src []byte) {
	lo, hi := &_mul.lo[c], &_mul.hi[c]
	n := len(src) &^ 7
	i := 0
	for ; i < n; i += 8 {
		s := binary.LittleEndian.Uint64(src[i:])
		d := binary.LittleEndian.Uint64(dst[i:])
		binary.LittleEndian.PutUint64(dst[i:], d^nibbleProduct(lo, hi, s))
	}
	row := &_mul.full[c]
	for ; i < len(src); i++ {
		dst[i] ^= row[src[i]]
	}
}

//mobweb:hot every byte of every cooked packet flows through here
func nibbleMulSlice(c byte, dst, src []byte) {
	lo, hi := &_mul.lo[c], &_mul.hi[c]
	n := len(src) &^ 7
	i := 0
	for ; i < n; i += 8 {
		s := binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], nibbleProduct(lo, hi, s))
	}
	row := &_mul.full[c]
	for ; i < len(src); i++ {
		dst[i] = row[src[i]]
	}
}

// ---- shared word-wise XOR ----

// xorSlice computes dst[i] ^= src[i] eight bytes at a time. It is the
// c == 1 path of MulAddSlice and the body of AddSlice; XOR is field
// addition, so there is no table work at all.
//mobweb:hot c == 1 fast path of every row accumulation
func xorSlice(dst, src []byte) {
	n := len(src) &^ 7
	i := 0
	for ; i < n; i += 8 {
		d := binary.LittleEndian.Uint64(dst[i:])
		s := binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], d^s)
	}
	for ; i < len(src); i++ {
		dst[i] ^= src[i]
	}
}
