package gf256

import (
	"testing"
	"testing/quick"
)

func TestTablesConsistent(t *testing.T) {
	// exp and log must be mutual inverses on the non-zero elements.
	seen := make(map[byte]bool, 255)
	for i := 0; i < 255; i++ {
		v := Exp(i)
		if v == 0 {
			t.Fatalf("Exp(%d) = 0; generator powers must be non-zero", i)
		}
		if seen[v] {
			t.Fatalf("Exp(%d) = %d repeats an earlier power", i, v)
		}
		seen[v] = true
		if got := Log(v); got != i {
			t.Errorf("Log(Exp(%d)) = %d, want %d", i, got, i)
		}
	}
	if len(seen) != 255 {
		t.Fatalf("generator produced %d distinct powers, want 255", len(seen))
	}
}

func TestExpWrapsAt255(t *testing.T) {
	if Exp(255) != Exp(0) {
		t.Errorf("Exp(255) = %d, want Exp(0) = %d", Exp(255), Exp(0))
	}
	if Exp(510) != Exp(0) {
		t.Errorf("Exp(510) = %d, want Exp(0) = %d", Exp(510), Exp(0))
	}
}

func TestMulTable(t *testing.T) {
	// Validate table-driven Mul against carry-less "Russian peasant"
	// multiplication for every pair of operands.
	slowMul := func(a, b byte) byte {
		var p byte
		for b > 0 {
			if b&1 != 0 {
				p ^= a
			}
			hi := a&0x80 != 0
			a <<= 1
			if hi {
				a ^= byte(Poly & 0xFF)
			}
			b >>= 1
		}
		return p
	}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			want := slowMul(byte(a), byte(b))
			if got := Mul(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%d, %d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestFieldAxioms(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}

	t.Run("mul commutative", func(t *testing.T) {
		f := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("mul associative", func(t *testing.T) {
		f := func(a, b, c byte) bool { return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) }
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("distributive", func(t *testing.T) {
		f := func(a, b, c byte) bool { return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c)) }
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("add self inverse", func(t *testing.T) {
		f := func(a, b byte) bool { return Sub(Add(a, b), b) == a }
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("mul identity", func(t *testing.T) {
		f := func(a byte) bool { return Mul(a, 1) == a && Mul(1, a) == a }
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("mul zero annihilates", func(t *testing.T) {
		f := func(a byte) bool { return Mul(a, 0) == 0 && Mul(0, a) == 0 }
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
}

func TestInverse(t *testing.T) {
	for a := 1; a < 256; a++ {
		inv := Inv(byte(a))
		if got := Mul(byte(a), inv); got != 1 {
			t.Errorf("Mul(%d, Inv(%d)) = %d, want 1", a, a, got)
		}
		if got := Div(1, byte(a)); got != inv {
			t.Errorf("Div(1, %d) = %d, want Inv = %d", a, got, inv)
		}
	}
}

func TestDivIsMulByInverse(t *testing.T) {
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Div(a, b) == Mul(a, Inv(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestDivRoundTrip(t *testing.T) {
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Mul(Div(a, b), b) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestPow(t *testing.T) {
	tests := []struct {
		a    byte
		k    int
		want byte
	}{
		{0, 0, 1},
		{0, 5, 0},
		{1, 100, 1},
		{2, 1, 2},
		{2, 8, byte(Poly & 0xFF)}, // x^8 reduces to the low bits of Poly
		{7, 0, 1},
	}
	for _, tt := range tests {
		if got := Pow(tt.a, tt.k); got != tt.want {
			t.Errorf("Pow(%d, %d) = %d, want %d", tt.a, tt.k, got, tt.want)
		}
	}
	// a^(k+1) == a^k * a for random cases.
	f := func(a byte, k uint8) bool {
		return Pow(a, int(k)+1) == Mul(Pow(a, int(k)), a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPanics(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("Div by zero", func() { Div(3, 0) })
	assertPanics("Inv of zero", func() { Inv(0) })
	assertPanics("Log of zero", func() { Log(0) })
	assertPanics("negative Exp", func() { Exp(-1) })
	assertPanics("negative Pow", func() { Pow(3, -2) })
}

func TestMulSlice(t *testing.T) {
	src := []byte{0, 1, 2, 3, 100, 200, 255}
	for _, c := range []byte{0, 1, 2, 5, 113, 255} {
		dst := make([]byte, len(src))
		MulSlice(c, dst, src)
		for i := range src {
			if want := Mul(c, src[i]); dst[i] != want {
				t.Errorf("MulSlice(c=%d)[%d] = %d, want %d", c, i, dst[i], want)
			}
		}
	}
}

func TestMulAddSlice(t *testing.T) {
	src := []byte{0, 1, 2, 3, 100, 200, 255}
	for _, c := range []byte{0, 1, 2, 5, 113, 255} {
		dst := []byte{9, 8, 7, 6, 5, 4, 3}
		orig := append([]byte(nil), dst...)
		MulAddSlice(c, dst, src)
		for i := range src {
			if want := Add(orig[i], Mul(c, src[i])); dst[i] != want {
				t.Errorf("MulAddSlice(c=%d)[%d] = %d, want %d", c, i, dst[i], want)
			}
		}
	}
}

func TestAddSlice(t *testing.T) {
	dst := []byte{1, 2, 3}
	AddSlice(dst, []byte{1, 2, 3})
	for i, v := range dst {
		if v != 0 {
			t.Errorf("AddSlice self-cancel index %d = %d, want 0", i, v)
		}
	}
}

func TestSliceLengthMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"MulSlice":    func() { MulSlice(2, make([]byte, 3), make([]byte, 4)) },
		"MulAddSlice": func() { MulAddSlice(2, make([]byte, 3), make([]byte, 4)) },
		"AddSlice":    func() { AddSlice(make([]byte, 3), make([]byte, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched lengths did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkMul(b *testing.B) {
	var acc byte
	for i := 0; i < b.N; i++ {
		acc ^= Mul(byte(i), byte(i>>8))
	}
	_ = acc
}

func BenchmarkMulAddSlice(b *testing.B) {
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i * 31)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAddSlice(byte(i)|1, dst, src)
	}
}
