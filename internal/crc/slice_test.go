package crc

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// benchSink defeats dead-code elimination of the benchmarked calls.
var benchSink uint16

// TestSlicingMatchesBytewise cross-checks the slicing-by-8 path against
// the byte-at-a-time reference for arbitrary data and register states.
func TestSlicingMatchesBytewise(t *testing.T) {
	f := func(crc uint16, data []byte) bool {
		return Update(crc, data) == updateBytewise(crc, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestSlicingAllLengths sweeps every length around the 8-byte block
// boundary so both the sliced loop and the bytewise tail are exercised in
// every alignment.
func TestSlicingAllLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	data := make([]byte, 64)
	rng.Read(data)
	for n := 0; n <= len(data); n++ {
		if got, want := Checksum(data[:n]), updateBytewise(Init, data[:n]); got != want {
			t.Fatalf("len %d: sliced %#04x, bytewise %#04x", n, got, want)
		}
	}
}

// TestSliceTableConstruction pins _slice[k][v] to its definition: the CRC
// of byte v followed by k zero bytes, starting from a zero register.
func TestSliceTableConstruction(t *testing.T) {
	for k := 0; k < 8; k++ {
		for v := 0; v < 256; v++ {
			msg := make([]byte, k+1)
			msg[0] = byte(v)
			if got, want := _slice[k][v], updateBytewise(0, msg); got != want {
				t.Fatalf("_slice[%d][%d] = %#04x, want %#04x", k, v, got, want)
			}
		}
	}
}

func BenchmarkUpdate(b *testing.B) {
	for _, size := range []int{64, 260, 1024, 4096} {
		data := make([]byte, size)
		rand.New(rand.NewSource(22)).Read(data)
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			b.SetBytes(int64(size))
			var sink uint16
			for i := 0; i < b.N; i++ {
				sink ^= Update(Init, data)
			}
			benchSink = sink
		})
		b.Run(fmt.Sprintf("size=%d/bytewise", size), func(b *testing.B) {
			b.SetBytes(int64(size))
			var sink uint16
			for i := 0; i < b.N; i++ {
				sink ^= updateBytewise(Init, data)
			}
			benchSink = sink
		})
	}
}
