package crc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKnownVectors(t *testing.T) {
	// CRC-16/CCITT-FALSE reference values (check value from the CRC
	// catalogue: "123456789" → 0x29B1).
	tests := []struct {
		name string
		in   string
		want uint16
	}{
		{"catalogue check", "123456789", 0x29B1},
		{"empty", "", 0xFFFF},
		{"single A", "A", 0xB915},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Checksum([]byte(tt.in)); got != tt.want {
				t.Errorf("Checksum(%q) = %#04x, want %#04x", tt.in, got, tt.want)
			}
		})
	}
}

func TestBitByBitEquivalence(t *testing.T) {
	// The table-driven implementation must agree with the naive
	// shift-register reference on random inputs.
	ref := func(data []byte) uint16 {
		crc := uint16(Init)
		for _, b := range data {
			crc ^= uint16(b) << 8
			for bit := 0; bit < 8; bit++ {
				if crc&0x8000 != 0 {
					crc = crc<<1 ^ Poly
				} else {
					crc <<= 1
				}
			}
		}
		return crc
	}
	f := func(data []byte) bool { return Checksum(data) == ref(data) }
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUpdateIncremental(t *testing.T) {
	f := func(a, b []byte) bool {
		whole := Checksum(append(append([]byte(nil), a...), b...))
		incr := Update(Update(Init, a), b)
		return whole == incr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDetectsAllSingleBitErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 260) // one cooked packet
	rng.Read(data)
	sum := Checksum(data)
	for i := range data {
		for bit := 0; bit < 8; bit++ {
			data[i] ^= 1 << bit
			if Verify(data, sum) {
				t.Fatalf("single-bit flip at byte %d bit %d undetected", i, bit)
			}
			data[i] ^= 1 << bit
		}
	}
}

func TestDetectsAllShortBursts(t *testing.T) {
	// Every contiguous error burst of length <= 16 bits must be detected.
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 64)
	rng.Read(data)
	sum := Checksum(data)
	totalBits := len(data) * 8
	flip := func(bitPos int) {
		data[bitPos/8] ^= 1 << (7 - bitPos%8)
	}
	for burstLen := 1; burstLen <= 16; burstLen++ {
		for start := 0; start+burstLen <= totalBits; start++ {
			// A burst flips its first and last bits; interior bits are
			// chosen deterministically to vary patterns.
			flip(start)
			if burstLen > 1 {
				flip(start + burstLen - 1)
				for k := 1; k < burstLen-1; k++ {
					if (start+k)%3 == 0 {
						flip(start + k)
					}
				}
			}
			if Verify(data, sum) {
				t.Fatalf("burst len %d at bit %d undetected", burstLen, start)
			}
			// Undo.
			flip(start)
			if burstLen > 1 {
				flip(start + burstLen - 1)
				for k := 1; k < burstLen-1; k++ {
					if (start+k)%3 == 0 {
						flip(start + k)
					}
				}
			}
		}
	}
}

func TestVerify(t *testing.T) {
	data := []byte("mobile web browsing")
	if !Verify(data, Checksum(data)) {
		t.Error("Verify rejects a correct checksum")
	}
	if Verify(data, Checksum(data)^1) {
		t.Error("Verify accepts a wrong checksum")
	}
}

func BenchmarkChecksum260(b *testing.B) {
	data := make([]byte, 260)
	rand.New(rand.NewSource(3)).Read(data)
	b.SetBytes(260)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Checksum(data)
	}
}
