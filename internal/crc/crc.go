// Package crc implements the CRC-16/CCITT-FALSE cyclic redundancy check
// the packet layer uses to detect corruption ("low computational cost and
// high error coverage", §4.1 of the paper).
//
// Parameters: width=16, poly=0x1021, init=0xFFFF, no reflection, no final
// XOR. A 16-bit CRC detects all single-bit errors, all double-bit errors
// within the code length, all odd-weight errors (the polynomial has the
// (x+1) factor absorbed via the init value's behaviour on short frames is
// still covered by the burst guarantee), and every burst of length <= 16.
package crc

// Poly is the CCITT generator polynomial x^16 + x^12 + x^5 + 1.
const Poly = 0x1021

// Init is the initial shift-register value for CCITT-FALSE.
const Init = 0xFFFF

// table is the byte-at-a-time lookup table for Poly.
var _table = genTable()

func genTable() [256]uint16 {
	var t [256]uint16
	for i := 0; i < 256; i++ {
		crc := uint16(i) << 8
		for bit := 0; bit < 8; bit++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ Poly
			} else {
				crc <<= 1
			}
		}
		t[i] = crc
	}
	return t
}

// Checksum returns the CRC-16/CCITT-FALSE of data.
func Checksum(data []byte) uint16 {
	return Update(Init, data)
}

// Update extends a running CRC with more data, enabling incremental
// computation across header and payload without concatenation.
func Update(crc uint16, data []byte) uint16 {
	for _, b := range data {
		crc = crc<<8 ^ _table[byte(crc>>8)^b]
	}
	return crc
}

// Verify reports whether data matches the expected checksum.
func Verify(data []byte, sum uint16) bool {
	return Checksum(data) == sum
}
