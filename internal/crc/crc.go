// Package crc implements the CRC-16/CCITT-FALSE cyclic redundancy check
// the packet layer uses to detect corruption ("low computational cost and
// high error coverage", §4.1 of the paper).
//
// Parameters: width=16, poly=0x1021, init=0xFFFF, no reflection, no final
// XOR. A 16-bit CRC detects all single-bit errors, all double-bit errors
// within the code length, all odd-weight errors (the polynomial has the
// (x+1) factor absorbed via the init value's behaviour on short frames is
// still covered by the burst guarantee), and every burst of length <= 16.
package crc

// Poly is the CCITT generator polynomial x^16 + x^12 + x^5 + 1.
const Poly = 0x1021

// Init is the initial shift-register value for CCITT-FALSE.
const Init = 0xFFFF

// table is the byte-at-a-time lookup table for Poly.
var _table = genTable()

func genTable() [256]uint16 {
	var t [256]uint16
	for i := 0; i < 256; i++ {
		crc := uint16(i) << 8
		for bit := 0; bit < 8; bit++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ Poly
			} else {
				crc <<= 1
			}
		}
		t[i] = crc
	}
	return t
}

// _slice extends the byte table for slicing-by-8: _slice[k][v] is the CRC
// contribution of byte v followed by k zero bytes, so eight input bytes
// can be folded into the register with eight independent lookups per
// iteration instead of eight dependent ones.
var _slice = genSliceTable()

func genSliceTable() [8][256]uint16 {
	var t [8][256]uint16
	t[0] = _table
	for v := 0; v < 256; v++ {
		crc := t[0][v]
		for k := 1; k < 8; k++ {
			crc = crc<<8 ^ t[0][byte(crc>>8)]
			t[k][v] = crc
		}
	}
	return t
}

// Checksum returns the CRC-16/CCITT-FALSE of data.
//mobweb:hot runs per frame on both marshal and parse
func Checksum(data []byte) uint16 {
	return Update(Init, data)
}

// Update extends a running CRC with more data, enabling incremental
// computation across header and payload without concatenation. Blocks of
// eight bytes go through the slicing tables; the tail (and short inputs)
// fall back to the byte-at-a-time reference path.
//mobweb:hot runs per frame on both marshal and parse
func Update(crc uint16, data []byte) uint16 {
	for len(data) >= 8 {
		// The 16-bit register only overlaps the first two bytes of the
		// block; the CRC is GF(2)-linear, so the eight per-byte
		// contributions combine with XOR.
		crc = _slice[7][data[0]^byte(crc>>8)] ^
			_slice[6][data[1]^byte(crc)] ^
			_slice[5][data[2]] ^
			_slice[4][data[3]] ^
			_slice[3][data[4]] ^
			_slice[2][data[5]] ^
			_slice[1][data[6]] ^
			_slice[0][data[7]]
		data = data[8:]
	}
	return updateBytewise(crc, data)
}

// updateBytewise is the byte-at-a-time reference implementation, kept as
// the cross-checked oracle for the slicing path (see TestSlicingMatchesBytewise).
//mobweb:hot tail path of every Update call
func updateBytewise(crc uint16, data []byte) uint16 {
	for _, b := range data {
		crc = crc<<8 ^ _table[byte(crc>>8)^b]
	}
	return crc
}

// Verify reports whether data matches the expected checksum.
func Verify(data []byte, sum uint16) bool {
	return Checksum(data) == sum
}
