package erasure

import (
	"sync"

	"mobweb/internal/matrix"
)

// invCacheCap bounds the number of inverted submatrices a Coder retains.
// A retransmission exchange replays a handful of row patterns (the clear
// prefix plus whichever parity rows survived each round), so a small LRU
// captures nearly all repeats while keeping the footprint at most
// 8 · m² bytes per coder.
const invCacheCap = 8

// invCache memoizes inverted m×m submatrices of the dispersal matrix,
// keyed by the sorted chosen row set. Inverted matrices are immutable
// once published, so hits hand out the shared instance.
type invCache struct {
	mu      sync.Mutex
	entries map[string]*matrix.Matrix
	order   []string // LRU order: least recent first
	hits    uint64
	misses  uint64
}

// InvCacheStats is a point-in-time snapshot of a Coder's inverse cache.
type InvCacheStats struct {
	Hits    uint64
	Misses  uint64
	Entries int
}

// InvCacheStats reports the coder's inverse-cache counters.
func (c *Coder) InvCacheStats() InvCacheStats {
	c.inv.mu.Lock()
	defer c.inv.mu.Unlock()
	return InvCacheStats{Hits: c.inv.hits, Misses: c.inv.misses, Entries: len(c.inv.entries)}
}

// invertForRows returns the inverse of the dispersal submatrix for the
// given sorted row indices, consulting the cache first. Rows must be
// sorted ascending so that equal row sets produce equal keys. The
// inversion itself runs outside the lock; concurrent misses on the same
// key may both invert, and the second store simply overwrites with an
// equal matrix.
func (c *Coder) invertForRows(rows []int) (*matrix.Matrix, error) {
	key := make([]byte, len(rows))
	for i, r := range rows {
		key[i] = byte(r) // r < n <= MaxCooked, so it fits a byte
	}
	k := string(key)

	c.inv.mu.Lock()
	if inv, ok := c.inv.entries[k]; ok {
		c.inv.hits++
		c.inv.touch(k)
		c.inv.mu.Unlock()
		codecMetrics.invHits.Inc()
		return inv, nil
	}
	c.inv.misses++
	c.inv.mu.Unlock()
	codecMetrics.invMisses.Inc()

	sub, err := c.dispersal.SubMatrix(rows)
	if err != nil {
		return nil, err
	}
	inv, err := sub.Invert()
	if err != nil {
		return nil, err
	}

	c.inv.mu.Lock()
	if c.inv.entries == nil {
		c.inv.entries = make(map[string]*matrix.Matrix, invCacheCap)
	}
	if _, ok := c.inv.entries[k]; !ok {
		c.inv.order = append(c.inv.order, k)
	}
	c.inv.entries[k] = inv
	for len(c.inv.entries) > invCacheCap {
		oldest := c.inv.order[0]
		c.inv.order = c.inv.order[1:]
		delete(c.inv.entries, oldest)
	}
	c.inv.mu.Unlock()
	return inv, nil
}

// touch moves key to the most-recent end of the LRU order. Caller holds mu.
func (ic *invCache) touch(k string) {
	for i, o := range ic.order {
		if o == k {
			copy(ic.order[i:], ic.order[i+1:])
			ic.order[len(ic.order)-1] = k
			return
		}
	}
}
