// Package erasure implements the systematic information-dispersal codec
// at the heart of fault-tolerant multi-resolution transmission (§4.1 of
// the paper).
//
// A payload is split into M raw packets of equal size. A Coder expands
// them into N >= M "cooked" packets that are GF(2^8)-linear combinations
// of the raw packets, using a Vandermonde dispersal matrix brought into
// systematic form:
//
//   - the first M cooked packets are byte-identical to the raw packets
//     ("clear text"), so a receiver can consume content before collecting
//     all of M packets, and
//   - ANY M intact cooked packets reconstruct all M raw packets, by
//     inverting the corresponding M×M submatrix (Rabin's IDA, JACM 1989,
//     with the Vandermonde modification the paper describes).
//
// The byte work runs through the pluggable GF(2^8) slice kernels in
// package gf256; output rows are computed by a GOMAXPROCS-bounded worker
// pool above a work-size cutover (see parallel.go); and submatrix
// inversions are memoized per Coder because retransmission rounds repeat
// row patterns (see invcache.go).
package erasure

import (
	"errors"
	"fmt"
	"sort"

	"mobweb/internal/matrix"
)

// Limits imposed by the GF(2^8) Vandermonde construction: the dispersal
// matrix needs N distinct evaluation points among the 255 non-zero field
// elements.
const (
	// MaxCooked is the largest supported number of cooked packets.
	MaxCooked = 255
)

// Errors reported by the codec. They are exported so transmission-layer
// callers can distinguish "not yet reconstructible" from hard failures.
var (
	// ErrShortSet signals fewer than M packets were supplied to Decode.
	ErrShortSet = errors.New("erasure: fewer than M packets available")
	// ErrDuplicateIndex signals the same cooked index appeared twice.
	ErrDuplicateIndex = errors.New("erasure: duplicate cooked packet index")
)

// Coder encodes M raw packets into N cooked packets and decodes any M of
// them back. A Coder's coding parameters are immutable after
// construction and it is safe for concurrent use; the only mutable state
// is the internal inverse cache, which synchronizes itself.
type Coder struct {
	m, n      int
	dispersal *matrix.Matrix // n×m systematic dispersal matrix
	inv       invCache       // memoized inverted submatrices by row set
}

// NewCoder constructs a systematic (m, n) coder. It returns an error when
// the shape is infeasible: m < 1, n < m, or n > MaxCooked.
func NewCoder(m, n int) (*Coder, error) {
	if m < 1 {
		return nil, fmt.Errorf("erasure: m = %d, want >= 1", m)
	}
	if n < m {
		return nil, fmt.Errorf("erasure: n = %d < m = %d", n, m)
	}
	if n > MaxCooked {
		return nil, fmt.Errorf("erasure: n = %d exceeds %d", n, MaxCooked)
	}
	v, err := matrix.Vandermonde(n, m)
	if err != nil {
		return nil, fmt.Errorf("dispersal matrix: %w", err)
	}
	sys, err := v.Systematic()
	if err != nil {
		return nil, fmt.Errorf("dispersal matrix: %w", err)
	}
	return &Coder{m: m, n: n, dispersal: sys}, nil
}

// M returns the number of raw packets.
func (c *Coder) M() int { return c.m }

// N returns the number of cooked packets.
func (c *Coder) N() int { return c.n }

// Ratio returns the redundancy ratio γ = N/M.
func (c *Coder) Ratio() float64 { return float64(c.n) / float64(c.m) }

// allocPackets carves count packet slices of size bytes out of one
// backing arena. The full slice expressions cap each view at its own
// region, so an append on one packet can never scribble on its neighbor.
func allocPackets(count, size int) [][]byte {
	backing := make([]byte, count*size)
	out := make([][]byte, count)
	for i := range out {
		out[i] = backing[i*size : (i+1)*size : (i+1)*size]
	}
	return out
}

// checkRaw validates the raw packet set and returns the shared size.
func (c *Coder) checkRaw(raw [][]byte) (int, error) {
	if len(raw) != c.m {
		return 0, fmt.Errorf("erasure: got %d raw packets, want %d", len(raw), c.m)
	}
	size := len(raw[0])
	for i, p := range raw {
		if len(p) != size {
			return 0, fmt.Errorf("erasure: raw packet %d has %d bytes, want %d", i, len(p), size)
		}
	}
	return size, nil
}

// Encode expands raw into cooked packets. Every raw packet must have the
// same length. The returned packets share one backing arena; the first m
// are copies of the raw packets (systematic property). Parity rows are
// computed in parallel above the work cutover.
func (c *Coder) Encode(raw [][]byte) ([][]byte, error) {
	size, err := c.checkRaw(raw)
	if err != nil {
		return nil, err
	}
	cooked := allocPackets(c.n, size)
	// The top m×m block of the systematic dispersal matrix is the
	// identity, so the clear-text prefix is a straight copy.
	for i := 0; i < c.m; i++ {
		copy(cooked[i], raw[i])
	}
	parityRows := c.n - c.m
	forEachRow(parityRows, parityRows*size, func(i int) {
		accumulateRow(cooked[c.m+i], c.dispersal.Row(c.m+i), raw)
	})
	return cooked, nil
}

// EncodeParity computes only the redundancy packets — cooked indices
// m..n-1 — skipping the systematic clear-text prefix entirely. It backs
// lazy plan encoding: a transmission plan whose receiver never asks past
// the clear prefix pays for no GF(2^8) work at all. The returned packets
// share one backing arena (the slice is empty when n == m).
func (c *Coder) EncodeParity(raw [][]byte) ([][]byte, error) {
	size, err := c.checkRaw(raw)
	if err != nil {
		return nil, err
	}
	rows := c.n - c.m
	parity := allocPackets(rows, size)
	forEachRow(rows, rows*size, func(i int) {
		accumulateRow(parity[i], c.dispersal.Row(c.m+i), raw)
	})
	codecMetrics.parityRows.Add(int64(rows))
	return parity, nil
}

// EncodeParityRow computes a single redundancy packet — cooked index
// m+row — without touching the rest of the parity tail. It backs
// row-granular lazy plan encoding: with the cooked-frame cache in front,
// serving one redundancy frame costs exactly one row of GF(2^8) work
// instead of materializing the whole generation, and a row evicted from
// the frame cache re-cooks alone.
func (c *Coder) EncodeParityRow(raw [][]byte, row int) ([]byte, error) {
	size, err := c.checkRaw(raw)
	if err != nil {
		return nil, err
	}
	if row < 0 || row >= c.n-c.m {
		return nil, fmt.Errorf("erasure: parity row %d outside [0, %d)", row, c.n-c.m)
	}
	out := make([]byte, size)
	accumulateRow(out, c.dispersal.Row(c.m+row), raw)
	codecMetrics.parityRows.Add(1)
	return out, nil
}

// EncodeInto is the allocation-free variant of Encode for hot transmission
// loops: cooked must contain n slices of the raw packet size.
func (c *Coder) EncodeInto(cooked, raw [][]byte) error {
	size, err := c.checkRaw(raw)
	if err != nil {
		return err
	}
	if len(cooked) != c.n {
		return fmt.Errorf("erasure: got %d cooked buffers, want %d", len(cooked), c.n)
	}
	for i := 0; i < c.n; i++ {
		if len(cooked[i]) != size {
			return fmt.Errorf("erasure: cooked buffer %d has %d bytes, want %d", i, len(cooked[i]), size)
		}
	}
	for i := 0; i < c.m; i++ {
		copy(cooked[i], raw[i])
	}
	parityRows := c.n - c.m
	forEachRow(parityRows, parityRows*size, func(i int) {
		dst := cooked[c.m+i]
		for j := range dst {
			dst[j] = 0
		}
		accumulateRow(dst, c.dispersal.Row(c.m+i), raw)
	})
	return nil
}

// Received is one intact cooked packet tagged with its index in the cooked
// sequence (0-based). Corrupted packets must simply not be presented.
type Received struct {
	Index int
	Data  []byte
}

// bitset256 tracks which of the MaxCooked+1 possible cooked indices have
// been seen; it replaces a map in Decode's per-call hot path.
type bitset256 [4]uint64

func (b *bitset256) testAndSet(i int) bool {
	w, mask := i>>6, uint64(1)<<(i&63)
	old := b[w]&mask != 0
	b[w] |= mask
	return old
}

// Decode reconstructs the m raw packets from any m (or more) intact cooked
// packets. Extra packets beyond m are ignored; which m are used is an
// implementation detail. Decode prefers clear-text packets (index < m)
// because they require no matrix work — the "saving recovering effort"
// property of the systematic construction. The returned packets share one
// backing arena and do not alias the received data.
func (c *Coder) Decode(received []Received) ([][]byte, error) {
	if len(received) < c.m {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrShortSet, len(received), c.m)
	}
	size := -1
	var seen bitset256
	// Partition into clear-text and redundant packets, preferring clear.
	chosen := make([]Received, 0, c.m)
	var redundant []Received
	for _, r := range received {
		if r.Index < 0 || r.Index >= c.n {
			return nil, fmt.Errorf("erasure: cooked index %d out of [0, %d)", r.Index, c.n)
		}
		if seen.testAndSet(r.Index) {
			return nil, fmt.Errorf("%w: index %d", ErrDuplicateIndex, r.Index)
		}
		if size == -1 {
			size = len(r.Data)
		} else if len(r.Data) != size {
			return nil, fmt.Errorf("erasure: packet %d has %d bytes, want %d", r.Index, len(r.Data), size)
		}
		if r.Index < c.m {
			chosen = append(chosen, r)
		} else {
			redundant = append(redundant, r)
		}
	}
	for _, r := range redundant {
		if len(chosen) == c.m {
			break
		}
		chosen = append(chosen, r)
	}
	if len(chosen) > c.m {
		chosen = chosen[:c.m]
	}
	if len(chosen) < c.m {
		return nil, fmt.Errorf("%w: only %d distinct indices", ErrShortSet, len(chosen))
	}

	raw := allocPackets(c.m, size)

	// Fast path: all chosen packets are clear text — the arena views are
	// filled by straight copies, no matrix work at all.
	if allClear := chosen[len(chosen)-1].Index < c.m; allClear {
		for _, r := range chosen {
			copy(raw[r.Index], r.Data)
		}
		return raw, nil
	}

	// Sort the chosen rows: the reconstruction raw = inv(sub(rows)) ×
	// data(rows) is invariant under permuting the rows together with
	// their data, and a canonical ascending order lets repeated
	// retransmission patterns share one cached inversion.
	sort.Slice(chosen, func(i, j int) bool { return chosen[i].Index < chosen[j].Index })
	rows := make([]int, c.m)
	data := make([][]byte, c.m)
	for i, r := range chosen {
		rows[i] = r.Index
		data[i] = r.Data
	}
	inv, err := c.invertForRows(rows)
	if err != nil {
		return nil, err
	}
	forEachRow(c.m, c.m*size, func(i int) {
		accumulateRow(raw[i], inv.Row(i), data)
	})
	return raw, nil
}

// Split cuts payload into m packets of packetSize bytes, zero-padding the
// final packet. It returns an error when the payload does not fit.
func Split(payload []byte, m, packetSize int) ([][]byte, error) {
	if m < 1 || packetSize < 1 {
		return nil, fmt.Errorf("erasure: split needs m >= 1 and packetSize >= 1, got m=%d size=%d", m, packetSize)
	}
	if len(payload) > m*packetSize {
		return nil, fmt.Errorf("erasure: payload %d bytes exceeds %d packets × %d bytes", len(payload), m, packetSize)
	}
	raw := allocPackets(m, packetSize)
	for i := 0; i < m; i++ {
		lo := i * packetSize
		if lo < len(payload) {
			hi := lo + packetSize
			if hi > len(payload) {
				hi = len(payload)
			}
			copy(raw[i], payload[lo:hi])
		}
	}
	return raw, nil
}

// Join is the inverse of Split: it concatenates raw packets and trims the
// result to originalLen bytes.
func Join(raw [][]byte, originalLen int) ([]byte, error) {
	total := 0
	for _, p := range raw {
		total += len(p)
	}
	if originalLen < 0 || originalLen > total {
		return nil, fmt.Errorf("erasure: original length %d outside [0, %d]", originalLen, total)
	}
	out := make([]byte, 0, total)
	for _, p := range raw {
		out = append(out, p...)
	}
	return out[:originalLen], nil
}

// PacketsFor returns the number of raw packets M = ceil(docSize/packetSize),
// the ⌈sD/sp⌉ of §4.2.
func PacketsFor(docSize, packetSize int) int {
	if packetSize <= 0 {
		panic("erasure: non-positive packet size")
	}
	if docSize <= 0 {
		return 1
	}
	return (docSize + packetSize - 1) / packetSize
}
