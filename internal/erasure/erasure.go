// Package erasure implements the systematic information-dispersal codec
// at the heart of fault-tolerant multi-resolution transmission (§4.1 of
// the paper).
//
// A payload is split into M raw packets of equal size. A Coder expands
// them into N >= M "cooked" packets that are GF(2^8)-linear combinations
// of the raw packets, using a Vandermonde dispersal matrix brought into
// systematic form:
//
//   - the first M cooked packets are byte-identical to the raw packets
//     ("clear text"), so a receiver can consume content before collecting
//     all of M packets, and
//   - ANY M intact cooked packets reconstruct all M raw packets, by
//     inverting the corresponding M×M submatrix (Rabin's IDA, JACM 1989,
//     with the Vandermonde modification the paper describes).
package erasure

import (
	"errors"
	"fmt"

	"mobweb/internal/matrix"
)

// Limits imposed by the GF(2^8) Vandermonde construction: the dispersal
// matrix needs N distinct evaluation points among the 255 non-zero field
// elements.
const (
	// MaxCooked is the largest supported number of cooked packets.
	MaxCooked = 255
)

// Errors reported by the codec. They are exported so transmission-layer
// callers can distinguish "not yet reconstructible" from hard failures.
var (
	// ErrShortSet signals fewer than M packets were supplied to Decode.
	ErrShortSet = errors.New("erasure: fewer than M packets available")
	// ErrDuplicateIndex signals the same cooked index appeared twice.
	ErrDuplicateIndex = errors.New("erasure: duplicate cooked packet index")
)

// Coder encodes M raw packets into N cooked packets and decodes any M of
// them back. A Coder is immutable after construction and safe for
// concurrent use.
type Coder struct {
	m, n       int
	dispersal  *matrix.Matrix // n×m systematic dispersal matrix
	packetSize int            // 0 means "set per call"
}

// NewCoder constructs a systematic (m, n) coder. It returns an error when
// the shape is infeasible: m < 1, n < m, or n > MaxCooked.
func NewCoder(m, n int) (*Coder, error) {
	if m < 1 {
		return nil, fmt.Errorf("erasure: m = %d, want >= 1", m)
	}
	if n < m {
		return nil, fmt.Errorf("erasure: n = %d < m = %d", n, m)
	}
	if n > MaxCooked {
		return nil, fmt.Errorf("erasure: n = %d exceeds %d", n, MaxCooked)
	}
	v, err := matrix.Vandermonde(n, m)
	if err != nil {
		return nil, fmt.Errorf("dispersal matrix: %w", err)
	}
	sys, err := v.Systematic()
	if err != nil {
		return nil, fmt.Errorf("dispersal matrix: %w", err)
	}
	return &Coder{m: m, n: n, dispersal: sys}, nil
}

// M returns the number of raw packets.
func (c *Coder) M() int { return c.m }

// N returns the number of cooked packets.
func (c *Coder) N() int { return c.n }

// Ratio returns the redundancy ratio γ = N/M.
func (c *Coder) Ratio() float64 { return float64(c.n) / float64(c.m) }

// Encode expands raw into cooked packets. Every raw packet must have the
// same length. The returned slice holds n freshly allocated packets; the
// first m are copies of the raw packets (systematic property).
func (c *Coder) Encode(raw [][]byte) ([][]byte, error) {
	if len(raw) != c.m {
		return nil, fmt.Errorf("erasure: got %d raw packets, want %d", len(raw), c.m)
	}
	size := -1
	for i, p := range raw {
		if size == -1 {
			size = len(p)
		} else if len(p) != size {
			return nil, fmt.Errorf("erasure: raw packet %d has %d bytes, want %d", i, len(p), size)
		}
	}
	cooked := make([][]byte, c.n)
	for i := 0; i < c.n; i++ {
		cooked[i] = make([]byte, size)
		row := c.dispersal.Row(i)
		accumulateRow(cooked[i], row, raw)
	}
	return cooked, nil
}

// EncodeParity computes only the redundancy packets — cooked indices
// m..n-1 — skipping the systematic clear-text prefix entirely. It backs
// lazy plan encoding: a transmission plan whose receiver never asks past
// the clear prefix pays for no GF(2^8) work at all. The returned slice
// holds n-m freshly allocated packets (empty when n == m).
func (c *Coder) EncodeParity(raw [][]byte) ([][]byte, error) {
	if len(raw) != c.m {
		return nil, fmt.Errorf("erasure: got %d raw packets, want %d", len(raw), c.m)
	}
	size := -1
	for i, p := range raw {
		if size == -1 {
			size = len(p)
		} else if len(p) != size {
			return nil, fmt.Errorf("erasure: raw packet %d has %d bytes, want %d", i, len(p), size)
		}
	}
	parity := make([][]byte, c.n-c.m)
	for i := range parity {
		parity[i] = make([]byte, size)
		accumulateRow(parity[i], c.dispersal.Row(c.m+i), raw)
	}
	return parity, nil
}

// EncodeInto is the allocation-free variant of Encode for hot transmission
// loops: cooked must contain n slices of the raw packet size.
func (c *Coder) EncodeInto(cooked, raw [][]byte) error {
	if len(raw) != c.m {
		return fmt.Errorf("erasure: got %d raw packets, want %d", len(raw), c.m)
	}
	if len(cooked) != c.n {
		return fmt.Errorf("erasure: got %d cooked buffers, want %d", len(cooked), c.n)
	}
	size := len(raw[0])
	for i, p := range raw {
		if len(p) != size {
			return fmt.Errorf("erasure: raw packet %d has %d bytes, want %d", i, len(p), size)
		}
	}
	for i := 0; i < c.n; i++ {
		if len(cooked[i]) != size {
			return fmt.Errorf("erasure: cooked buffer %d has %d bytes, want %d", i, len(cooked[i]), size)
		}
		for j := range cooked[i] {
			cooked[i][j] = 0
		}
		accumulateRow(cooked[i], c.dispersal.Row(i), raw)
	}
	return nil
}

func accumulateRow(dst, row []byte, raw [][]byte) {
	for j, coeff := range row {
		if coeff == 0 {
			continue
		}
		mulAdd(coeff, dst, raw[j])
	}
}

// Received is one intact cooked packet tagged with its index in the cooked
// sequence (0-based). Corrupted packets must simply not be presented.
type Received struct {
	Index int
	Data  []byte
}

// Decode reconstructs the m raw packets from any m (or more) intact cooked
// packets. Extra packets beyond m are ignored; which m are used is an
// implementation detail. Decode prefers clear-text packets (index < m)
// because they require no matrix work — the "saving recovering effort"
// property of the systematic construction.
func (c *Coder) Decode(received []Received) ([][]byte, error) {
	if len(received) < c.m {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrShortSet, len(received), c.m)
	}
	size := -1
	seen := make(map[int]bool, len(received))
	// Partition into clear-text and redundant packets, preferring clear.
	chosen := make([]Received, 0, c.m)
	var redundant []Received
	for _, r := range received {
		if r.Index < 0 || r.Index >= c.n {
			return nil, fmt.Errorf("erasure: cooked index %d out of [0, %d)", r.Index, c.n)
		}
		if seen[r.Index] {
			return nil, fmt.Errorf("%w: index %d", ErrDuplicateIndex, r.Index)
		}
		seen[r.Index] = true
		if size == -1 {
			size = len(r.Data)
		} else if len(r.Data) != size {
			return nil, fmt.Errorf("erasure: packet %d has %d bytes, want %d", r.Index, len(r.Data), size)
		}
		if r.Index < c.m {
			chosen = append(chosen, r)
		} else {
			redundant = append(redundant, r)
		}
	}
	for _, r := range redundant {
		if len(chosen) == c.m {
			break
		}
		chosen = append(chosen, r)
	}
	if len(chosen) > c.m {
		chosen = chosen[:c.m]
	}
	if len(chosen) < c.m {
		return nil, fmt.Errorf("%w: only %d distinct indices", ErrShortSet, len(chosen))
	}

	raw := make([][]byte, c.m)
	// Fast path: all chosen packets are clear text.
	allClear := true
	for _, r := range chosen {
		if r.Index >= c.m {
			allClear = false
			break
		}
	}
	if allClear {
		for _, r := range chosen {
			raw[r.Index] = append([]byte(nil), r.Data...)
		}
		return raw, nil
	}

	rows := make([]int, c.m)
	for i, r := range chosen {
		rows[i] = r.Index
	}
	sub, err := c.dispersal.SubMatrix(rows)
	if err != nil {
		return nil, err
	}
	inv, err := sub.Invert()
	if err != nil {
		return nil, fmt.Errorf("erasure: reconstruct: %w", err)
	}
	for i := 0; i < c.m; i++ {
		raw[i] = make([]byte, size)
		row := inv.Row(i)
		for j, coeff := range row {
			if coeff == 0 {
				continue
			}
			mulAdd(coeff, raw[i], chosen[j].Data)
		}
	}
	return raw, nil
}

// Split cuts payload into m packets of packetSize bytes, zero-padding the
// final packet. It returns an error when the payload does not fit.
func Split(payload []byte, m, packetSize int) ([][]byte, error) {
	if m < 1 || packetSize < 1 {
		return nil, fmt.Errorf("erasure: split needs m >= 1 and packetSize >= 1, got m=%d size=%d", m, packetSize)
	}
	if len(payload) > m*packetSize {
		return nil, fmt.Errorf("erasure: payload %d bytes exceeds %d packets × %d bytes", len(payload), m, packetSize)
	}
	raw := make([][]byte, m)
	for i := 0; i < m; i++ {
		raw[i] = make([]byte, packetSize)
		lo := i * packetSize
		if lo < len(payload) {
			hi := lo + packetSize
			if hi > len(payload) {
				hi = len(payload)
			}
			copy(raw[i], payload[lo:hi])
		}
	}
	return raw, nil
}

// Join is the inverse of Split: it concatenates raw packets and trims the
// result to originalLen bytes.
func Join(raw [][]byte, originalLen int) ([]byte, error) {
	total := 0
	for _, p := range raw {
		total += len(p)
	}
	if originalLen < 0 || originalLen > total {
		return nil, fmt.Errorf("erasure: original length %d outside [0, %d]", originalLen, total)
	}
	out := make([]byte, 0, total)
	for _, p := range raw {
		out = append(out, p...)
	}
	return out[:originalLen], nil
}

// PacketsFor returns the number of raw packets M = ceil(docSize/packetSize),
// the ⌈sD/sp⌉ of §4.2.
func PacketsFor(docSize, packetSize int) int {
	if packetSize <= 0 {
		panic("erasure: non-positive packet size")
	}
	if docSize <= 0 {
		return 1
	}
	return (docSize + packetSize - 1) / packetSize
}
