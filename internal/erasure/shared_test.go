package erasure

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

func TestSharedReturnsSameInstance(t *testing.T) {
	a, err := Shared(40, 60)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Shared(40, 60)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Shared(40, 60) returned distinct instances")
	}
}

func TestSharedMatchesNewCoder(t *testing.T) {
	shared, err := Shared(5, 9)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewCoder(5, 9)
	if err != nil {
		t.Fatal(err)
	}
	raw := randomPackets(rand.New(rand.NewSource(1)), 5, 32)
	a, err := shared.Encode(raw)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fresh.Encode(raw)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("cooked packet %d differs between Shared and NewCoder", i)
		}
	}
}

func TestSharedValidation(t *testing.T) {
	if _, err := Shared(0, 5); err == nil {
		t.Error("m = 0 accepted")
	}
	if _, err := Shared(5, 4); err == nil {
		t.Error("n < m accepted")
	}
}

func TestSharedConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	coders := make([]*Coder, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Shared(7, 11)
			if err != nil {
				t.Error(err)
				return
			}
			coders[g] = c
		}(g)
	}
	wg.Wait()
	for _, c := range coders[1:] {
		if c != coders[0] {
			t.Fatal("concurrent Shared calls produced different instances")
		}
	}
}
