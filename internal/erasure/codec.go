package erasure

import "fmt"

// CodecID identifies a cooked-packet codec on the wire, in cache keys
// and in plan layouts. The zero value is the paper's fixed-rate
// Vandermonde code, so legacy layouts and frames keep their meaning.
type CodecID uint8

const (
	// CodecVandermonde is the fixed-rate systematic Rabin/IDA code: N
	// cooked packets are fixed per round, any M of them reconstruct.
	CodecVandermonde CodecID = 0
	// CodecFountain is the rateless LT-style code (internal/fountain):
	// the server streams cooked packets open-loop until the client has
	// decoded and says stop.
	CodecFountain CodecID = 1
)

// String returns the canonical lower-case codec name used by flags,
// gateway headers and benchmark output.
func (id CodecID) String() string {
	switch id {
	case CodecVandermonde:
		return "vandermonde"
	case CodecFountain:
		return "fountain"
	default:
		return fmt.Sprintf("codec(%d)", uint8(id))
	}
}

// Valid reports whether id names a known codec.
func (id CodecID) Valid() bool {
	return id == CodecVandermonde || id == CodecFountain
}

// ParseCodec maps a flag/header value to a CodecID. The empty string
// selects the default (Vandermonde) so absent headers keep today's
// behavior.
func ParseCodec(s string) (CodecID, error) {
	switch s {
	case "", "vandermonde", "vand", "rs":
		return CodecVandermonde, nil
	case "fountain", "lt":
		return CodecFountain, nil
	default:
		return CodecVandermonde, fmt.Errorf("erasure: unknown codec %q", s)
	}
}

// Codec is the abstraction both coders satisfy: a generation-scoped
// encoder identified by codec id over M source packets. The concrete
// APIs differ — the fixed-rate coder exposes row-indexed parity, the
// fountain an unbounded seq space — so call sites type-switch on
// CodecID after sharing the geometry checks this interface carries.
type Codec interface {
	// CodecID identifies the wire/cache format of this codec's frames.
	CodecID() CodecID
	// M returns the number of raw (source) packets per generation.
	M() int
}

// CodecID identifies the fixed-rate Vandermonde coder.
func (c *Coder) CodecID() CodecID { return CodecVandermonde }

var _ Codec = (*Coder)(nil)
