package erasure

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewCoderValidation(t *testing.T) {
	tests := []struct {
		name string
		m, n int
		ok   bool
	}{
		{"m zero", 0, 5, false},
		{"n below m", 5, 4, false},
		{"n equals m", 5, 5, true},
		{"typical paper shape", 40, 60, true},
		{"n too large", 3, 256, false},
		{"max n", 3, 255, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewCoder(tt.m, tt.n)
			if (err == nil) != tt.ok {
				t.Fatalf("NewCoder(%d, %d) err = %v, want ok=%v", tt.m, tt.n, err, tt.ok)
			}
		})
	}
}

func TestSystematicPrefix(t *testing.T) {
	c, err := NewCoder(4, 9)
	if err != nil {
		t.Fatal(err)
	}
	raw := randomPackets(rand.New(rand.NewSource(1)), 4, 32)
	cooked, err := c.Encode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(cooked) != 9 {
		t.Fatalf("len(cooked) = %d, want 9", len(cooked))
	}
	for i := 0; i < 4; i++ {
		if !bytes.Equal(cooked[i], raw[i]) {
			t.Errorf("cooked[%d] differs from raw[%d]; systematic prefix violated", i, i)
		}
	}
}

func TestDecodeAllSubsets(t *testing.T) {
	// Exhaustively verify the "any M of N" property for a small code.
	const m, n = 3, 6
	c, err := NewCoder(m, n)
	if err != nil {
		t.Fatal(err)
	}
	raw := randomPackets(rand.New(rand.NewSource(2)), m, 16)
	cooked, err := c.Encode(raw)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for d := b + 1; d < n; d++ {
				rec := []Received{
					{Index: a, Data: cooked[a]},
					{Index: b, Data: cooked[b]},
					{Index: d, Data: cooked[d]},
				}
				got, err := c.Decode(rec)
				if err != nil {
					t.Fatalf("subset {%d,%d,%d}: %v", a, b, d, err)
				}
				for i := range raw {
					if !bytes.Equal(got[i], raw[i]) {
						t.Fatalf("subset {%d,%d,%d}: raw[%d] mismatch", a, b, d, i)
					}
				}
			}
		}
	}
}

func TestDecodePaperShape(t *testing.T) {
	// The paper's default: M=40, N=60. Drop 20 random packets and recover.
	c, err := NewCoder(40, 60)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	raw := randomPackets(rng, 40, 256)
	cooked, err := c.Encode(raw)
	if err != nil {
		t.Fatal(err)
	}
	perm := rng.Perm(60)
	rec := make([]Received, 0, 40)
	for _, idx := range perm[:40] {
		rec = append(rec, Received{Index: idx, Data: cooked[idx]})
	}
	got, err := c.Decode(rec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		if !bytes.Equal(got[i], raw[i]) {
			t.Fatalf("raw[%d] mismatch after 33%% loss", i)
		}
	}
}

func TestDecodeShortSet(t *testing.T) {
	c, err := NewCoder(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	raw := randomPackets(rand.New(rand.NewSource(4)), 3, 8)
	cooked, err := c.Encode(raw)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Decode([]Received{{Index: 0, Data: cooked[0]}, {Index: 4, Data: cooked[4]}})
	if !errors.Is(err, ErrShortSet) {
		t.Fatalf("err = %v, want ErrShortSet", err)
	}
}

func TestDecodeDuplicateIndex(t *testing.T) {
	c, err := NewCoder(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	raw := randomPackets(rand.New(rand.NewSource(5)), 2, 8)
	cooked, err := c.Encode(raw)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Decode([]Received{
		{Index: 3, Data: cooked[3]},
		{Index: 3, Data: cooked[3]},
	})
	if !errors.Is(err, ErrDuplicateIndex) {
		t.Fatalf("err = %v, want ErrDuplicateIndex", err)
	}
}

func TestDecodeIndexOutOfRange(t *testing.T) {
	c, err := NewCoder(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Decode([]Received{
		{Index: 4, Data: make([]byte, 8)},
		{Index: 0, Data: make([]byte, 8)},
	})
	if err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestDecodeMismatchedSizes(t *testing.T) {
	c, err := NewCoder(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Decode([]Received{
		{Index: 0, Data: make([]byte, 8)},
		{Index: 1, Data: make([]byte, 9)},
	})
	if err == nil {
		t.Fatal("mismatched packet sizes accepted")
	}
}

func TestDecodePrefersClearText(t *testing.T) {
	// With all clear-text packets present the decode must be a pure copy
	// (no matrix inversion), observable through exact data recovery even
	// when extra redundant packets are supplied in front.
	c, err := NewCoder(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	raw := randomPackets(rand.New(rand.NewSource(6)), 3, 8)
	cooked, err := c.Encode(raw)
	if err != nil {
		t.Fatal(err)
	}
	rec := []Received{
		{Index: 5, Data: cooked[5]},
		{Index: 0, Data: cooked[0]},
		{Index: 1, Data: cooked[1]},
		{Index: 2, Data: cooked[2]},
	}
	got, err := c.Decode(rec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		if !bytes.Equal(got[i], raw[i]) {
			t.Fatalf("raw[%d] mismatch", i)
		}
	}
}

func TestEncodeInto(t *testing.T) {
	c, err := NewCoder(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	raw := randomPackets(rand.New(rand.NewSource(7)), 4, 64)
	want, err := c.Encode(raw)
	if err != nil {
		t.Fatal(err)
	}
	cooked := make([][]byte, 7)
	for i := range cooked {
		cooked[i] = make([]byte, 64)
		cooked[i][0] = 0xFF // stale data that EncodeInto must clear
	}
	if err := c.EncodeInto(cooked, raw); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !bytes.Equal(cooked[i], want[i]) {
			t.Errorf("EncodeInto packet %d differs from Encode", i)
		}
	}
}

func TestEncodeIntoValidation(t *testing.T) {
	c, err := NewCoder(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	raw := randomPackets(rand.New(rand.NewSource(8)), 2, 8)
	if err := c.EncodeInto(make([][]byte, 2), raw); err == nil {
		t.Error("wrong cooked count accepted")
	}
	bad := [][]byte{make([]byte, 8), make([]byte, 8), make([]byte, 7)}
	if err := c.EncodeInto(bad, raw); err == nil {
		t.Error("wrong cooked size accepted")
	}
}

func TestEncodeValidation(t *testing.T) {
	c, err := NewCoder(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Encode([][]byte{make([]byte, 4)}); err == nil {
		t.Error("wrong raw count accepted")
	}
	if _, err := c.Encode([][]byte{make([]byte, 4), make([]byte, 5)}); err == nil {
		t.Error("ragged raw packets accepted")
	}
}

func TestSplitJoinRoundTrip(t *testing.T) {
	f := func(payload []byte) bool {
		if len(payload) == 0 {
			return true
		}
		const sp = 16
		m := PacketsFor(len(payload), sp)
		raw, err := Split(payload, m, sp)
		if err != nil {
			return false
		}
		back, err := Join(raw, len(payload))
		if err != nil {
			return false
		}
		return bytes.Equal(back, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSplitPadsFinalPacket(t *testing.T) {
	raw, err := Split([]byte("abcde"), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw[0], []byte("abcd")) {
		t.Errorf("raw[0] = %q", raw[0])
	}
	if !bytes.Equal(raw[1], []byte{'e', 0, 0, 0}) {
		t.Errorf("raw[1] = %v, want e followed by zero padding", raw[1])
	}
}

func TestSplitErrors(t *testing.T) {
	if _, err := Split([]byte("abcdef"), 1, 4); err == nil {
		t.Error("oversized payload accepted")
	}
	if _, err := Split([]byte("a"), 0, 4); err == nil {
		t.Error("m = 0 accepted")
	}
	if _, err := Split([]byte("a"), 1, 0); err == nil {
		t.Error("packetSize = 0 accepted")
	}
}

func TestJoinErrors(t *testing.T) {
	raw := [][]byte{{1, 2}, {3, 4}}
	if _, err := Join(raw, 5); err == nil {
		t.Error("originalLen beyond total accepted")
	}
	if _, err := Join(raw, -1); err == nil {
		t.Error("negative originalLen accepted")
	}
}

func TestPacketsFor(t *testing.T) {
	tests := []struct {
		doc, sp, want int
	}{
		{10240, 256, 40}, // the paper's default document
		{1, 256, 1},
		{256, 256, 1},
		{257, 256, 2},
		{0, 256, 1},
	}
	for _, tt := range tests {
		if got := PacketsFor(tt.doc, tt.sp); got != tt.want {
			t.Errorf("PacketsFor(%d, %d) = %d, want %d", tt.doc, tt.sp, got, tt.want)
		}
	}
}

func TestEndToEndProperty(t *testing.T) {
	// Property: for random payloads and random survivor sets of size M,
	// split→encode→drop→decode→join recovers the payload exactly.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		payloadLen := 1 + rng.Intn(2000)
		payload := make([]byte, payloadLen)
		rng.Read(payload)
		const sp = 64
		m := PacketsFor(payloadLen, sp)
		n := m + rng.Intn(m+1) // γ in [1, 2]
		if n > MaxCooked {
			n = MaxCooked
		}
		c, err := NewCoder(m, n)
		if err != nil {
			return false
		}
		raw, err := Split(payload, m, sp)
		if err != nil {
			return false
		}
		cooked, err := c.Encode(raw)
		if err != nil {
			return false
		}
		perm := rng.Perm(n)
		rec := make([]Received, 0, m)
		for _, idx := range perm[:m] {
			rec = append(rec, Received{Index: idx, Data: cooked[idx]})
		}
		dec, err := c.Decode(rec)
		if err != nil {
			return false
		}
		back, err := Join(dec, payloadLen)
		if err != nil {
			return false
		}
		return bytes.Equal(back, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func randomPackets(rng *rand.Rand, m, size int) [][]byte {
	raw := make([][]byte, m)
	for i := range raw {
		raw[i] = make([]byte, size)
		rng.Read(raw[i])
	}
	return raw
}

func BenchmarkEncode40x60(b *testing.B) {
	c, err := NewCoder(40, 60)
	if err != nil {
		b.Fatal(err)
	}
	raw := randomPackets(rand.New(rand.NewSource(9)), 40, 256)
	cooked := make([][]byte, 60)
	for i := range cooked {
		cooked[i] = make([]byte, 256)
	}
	b.SetBytes(40 * 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.EncodeInto(cooked, raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode40of60WorstCase(b *testing.B) {
	// Worst case: no clear-text packets survive; full matrix inversion.
	c, err := NewCoder(40, 60)
	if err != nil {
		b.Fatal(err)
	}
	raw := randomPackets(rand.New(rand.NewSource(10)), 40, 256)
	cooked, err := c.Encode(raw)
	if err != nil {
		b.Fatal(err)
	}
	rec := make([]Received, 0, 40)
	for i := 20; i < 60; i++ {
		rec = append(rec, Received{Index: i, Data: cooked[i]})
	}
	b.SetBytes(40 * 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(rec); err != nil {
			b.Fatal(err)
		}
	}
}
