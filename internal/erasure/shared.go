package erasure

import "sync"

// _shared memoizes coders by shape. A Coder is immutable after
// construction and safe for concurrent use, so sharing one instance per
// (m, n) is semantically transparent; it exists because the simulator
// builds thousands of plans with identical shapes and the systematic
// Vandermonde transform (a 2·m³-flavored matrix inversion) would dominate
// their cost.
var _shared sync.Map // key: int(m)<<16 | int(n) → *Coder

// Shared returns a memoized coder for the shape, constructing it on first
// use. Validation errors match NewCoder's.
func Shared(m, n int) (*Coder, error) {
	if m < 1 || n < m || n > MaxCooked {
		// Delegate to NewCoder for the canonical error message.
		return NewCoder(m, n)
	}
	key := m<<16 | n
	if v, ok := _shared.Load(key); ok {
		coder, ok := v.(*Coder)
		if ok {
			return coder, nil
		}
	}
	coder, err := NewCoder(m, n)
	if err != nil {
		return nil, err
	}
	actual, _ := _shared.LoadOrStore(key, coder)
	shared, ok := actual.(*Coder)
	if !ok {
		return coder, nil
	}
	return shared, nil
}
