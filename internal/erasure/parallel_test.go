package erasure

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// withWorkers forces the codec onto n workers for the duration of fn.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := SetMaxWorkers(n)
	defer SetMaxWorkers(prev)
	fn()
}

func TestForEachRowCoversAllRows(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 7} {
		for _, rows := range []int{0, 1, 2, 5, 16, 33} {
			prev := SetMaxWorkers(workers)
			var mu sync.Mutex
			hit := make([]int, rows)
			forEachRow(rows, rows*4096+defaultParallelCutover, func(i int) {
				mu.Lock()
				hit[i]++
				mu.Unlock()
			})
			SetMaxWorkers(prev)
			for i, h := range hit {
				if h != 1 {
					t.Fatalf("workers=%d rows=%d: row %d visited %d times", workers, rows, i, h)
				}
			}
		}
	}
}

func TestWorkerCount(t *testing.T) {
	// Automatic sizing stays serial below the cutover...
	if got := workerCount(64, 1024); got != 1 {
		t.Errorf("workerCount below cutover = %d, want 1", got)
	}
	// ...and an explicit override forces parallelism regardless of size,
	// capped by the row count.
	withWorkers(t, 4, func() {
		if got := workerCount(64, 1024); got != 4 {
			t.Errorf("forced workerCount = %d, want 4", got)
		}
		if got := workerCount(2, 1024); got != 2 {
			t.Errorf("row-capped workerCount = %d, want 2", got)
		}
	})
}

// TestParallelEncodeMatchesSerial pins the parallel row scheduler to the
// serial result for every primitive across a range of shapes.
func TestParallelEncodeMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, shape := range []struct{ m, n int }{{4, 8}, {16, 24}, {40, 60}} {
		c, err := NewCoder(shape.m, shape.n)
		if err != nil {
			t.Fatal(err)
		}
		raw := randomPackets(rng, shape.m, 512)

		var serialCooked, serialParity [][]byte
		withWorkers(t, 1, func() {
			serialCooked, err = c.Encode(raw)
			if err != nil {
				t.Fatal(err)
			}
			serialParity, err = c.EncodeParity(raw)
			if err != nil {
				t.Fatal(err)
			}
		})
		withWorkers(t, 4, func() {
			cooked, err := c.Encode(raw)
			if err != nil {
				t.Fatal(err)
			}
			for i := range cooked {
				if !bytes.Equal(cooked[i], serialCooked[i]) {
					t.Fatalf("(%d,%d) parallel Encode packet %d differs", shape.m, shape.n, i)
				}
			}
			parity, err := c.EncodeParity(raw)
			if err != nil {
				t.Fatal(err)
			}
			for i := range parity {
				if !bytes.Equal(parity[i], serialParity[i]) {
					t.Fatalf("(%d,%d) parallel EncodeParity packet %d differs", shape.m, shape.n, i)
				}
			}

			// Worst-case decode (no clear text) through the parallel path.
			rec := make([]Received, 0, shape.m)
			for i := shape.n - shape.m; i < shape.n; i++ {
				rec = append(rec, Received{Index: i, Data: cooked[i]})
			}
			dec, err := c.Decode(rec)
			if err != nil {
				t.Fatal(err)
			}
			for i := range raw {
				if !bytes.Equal(dec[i], raw[i]) {
					t.Fatalf("(%d,%d) parallel Decode raw[%d] mismatch", shape.m, shape.n, i)
				}
			}
		})
	}
}

// TestSharedCodersConcurrent drives the parallel encoder concurrently
// through erasure.Shared coders — the -race test the satellite asks for:
// multiple goroutines share one memoized Coder (and its inverse cache)
// while the row workers of each call run underneath.
func TestSharedCodersConcurrent(t *testing.T) {
	withWorkers(t, 2, func() {
		const goroutines = 8
		var wg sync.WaitGroup
		errs := make(chan error, goroutines)
		wg.Add(goroutines)
		for g := 0; g < goroutines; g++ {
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(100 + g)))
				for iter := 0; iter < 20; iter++ {
					c, err := Shared(16, 24)
					if err != nil {
						errs <- err
						return
					}
					raw := randomPackets(rng, 16, 256)
					cooked, err := c.Encode(raw)
					if err != nil {
						errs <- err
						return
					}
					// Rotate through survivor sets so the inverse cache sees
					// both repeats (hits) and fresh patterns (misses+evictions).
					rec := make([]Received, 0, 16)
					start := iter % 9
					for i := start; i < start+16; i++ {
						rec = append(rec, Received{Index: i, Data: cooked[i]})
					}
					dec, err := c.Decode(rec)
					if err != nil {
						errs <- err
						return
					}
					for i := range raw {
						if !bytes.Equal(dec[i], raw[i]) {
							errs <- fmt.Errorf("goroutine %d iter %d: raw[%d] mismatch", g, iter, i)
							return
						}
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	})
}

func TestInvCacheHitsAndEviction(t *testing.T) {
	c, err := NewCoder(4, 12)
	if err != nil {
		t.Fatal(err)
	}
	raw := randomPackets(rand.New(rand.NewSource(12)), 4, 64)
	cooked, err := c.Encode(raw)
	if err != nil {
		t.Fatal(err)
	}
	decodeRows := func(rows []int) {
		t.Helper()
		rec := make([]Received, 0, len(rows))
		for _, r := range rows {
			rec = append(rec, Received{Index: r, Data: cooked[r]})
		}
		dec, err := c.Decode(rec)
		if err != nil {
			t.Fatal(err)
		}
		for i := range raw {
			if !bytes.Equal(dec[i], raw[i]) {
				t.Fatalf("rows %v: raw[%d] mismatch", rows, i)
			}
		}
	}

	// Same row set twice — second decode must hit, regardless of the order
	// the packets arrive in (keys are canonicalized by sorting).
	decodeRows([]int{4, 5, 6, 7})
	decodeRows([]int{7, 6, 5, 4})
	st := c.InvCacheStats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("after repeat decode: %+v, want 1 miss and 1 hit", st)
	}

	// All-clear decodes never touch the cache.
	decodeRows([]int{0, 1, 2, 3})
	if st2 := c.InvCacheStats(); st2.Hits != st.Hits || st2.Misses != st.Misses {
		t.Fatalf("all-clear decode touched the inverse cache: %+v", st2)
	}

	// More distinct row sets than the capacity: entries stay bounded.
	for shift := 0; shift < invCacheCap+4; shift++ {
		decodeRows([]int{4 + shift%8, 5 + shift%7, 2, 3})
	}
	if st := c.InvCacheStats(); st.Entries > invCacheCap {
		t.Fatalf("inverse cache grew to %d entries, cap is %d", st.Entries, invCacheCap)
	}
}

// TestDecodeArenaViewsIndependent guards the arena slicing: appending to
// one returned packet must not clobber its neighbor.
func TestDecodeArenaViewsIndependent(t *testing.T) {
	c, err := NewCoder(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	raw := randomPackets(rand.New(rand.NewSource(13)), 2, 8)
	cooked, err := c.Encode(raw)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range [][]Received{
		{{Index: 0, Data: cooked[0]}, {Index: 1, Data: cooked[1]}}, // all-clear path
		{{Index: 2, Data: cooked[2]}, {Index: 3, Data: cooked[3]}}, // inversion path
	} {
		dec, err := c.Decode(rec)
		if err != nil {
			t.Fatal(err)
		}
		_ = append(dec[0], 0xAA, 0xBB)
		if !bytes.Equal(dec[1], raw[1]) {
			t.Fatal("append to packet 0 clobbered packet 1: arena views must be capacity-capped")
		}
	}
}

// TestDecodeDoesNotAliasInput ensures returned packets are copies even on
// the all-clear fast path, so callers may mutate them freely.
func TestDecodeDoesNotAliasInput(t *testing.T) {
	c, err := NewCoder(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	raw := randomPackets(rand.New(rand.NewSource(14)), 2, 8)
	cooked, err := c.Encode(raw)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decode([]Received{{Index: 0, Data: cooked[0]}, {Index: 1, Data: cooked[1]}})
	if err != nil {
		t.Fatal(err)
	}
	dec[0][0] ^= 0xFF
	if cooked[0][0] == dec[0][0] {
		t.Fatal("decoded packet aliases the received data")
	}
}
