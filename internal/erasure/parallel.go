package erasure

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Row-level parallelism for Encode/EncodeParity/Decode. Every output row
// of the codec is independent — row i only reads the (shared, read-only)
// source packets and writes its own destination slice — so rows can be
// computed by a GOMAXPROCS-bounded pool of striding workers with no
// locking at all. Small jobs stay serial: below the work cutover the
// goroutine handoff costs more than the byte work it would spread out.

// defaultParallelCutover is the minimum total row work, in bytes, before
// the codec fans out. 128 KiB is several times the break-even point for
// goroutine spawn+join on commodity cores, so small documents (the common
// mobile payload) never pay scheduling overhead.
const defaultParallelCutover = 128 << 10

// parallelCutover is read atomically so tests and benchmarks can lower it
// without racing in-flight encodes.
var parallelCutover atomic.Int64

// maxWorkersOverride, when positive, forces that worker count regardless
// of GOMAXPROCS and the cutover; zero restores automatic sizing. It
// exists so correctness tests and benchmarks can exercise the parallel
// path deterministically (including on single-core hosts).
var maxWorkersOverride atomic.Int32

func init() {
	parallelCutover.Store(defaultParallelCutover)
}

// SetMaxWorkers overrides the codec's worker count: n > 0 forces n
// workers (still capped by the row count), n == 0 restores automatic
// sizing (GOMAXPROCS-bounded, serial below the work cutover). It returns
// the previous override and is safe to call concurrently with running
// codecs.
func SetMaxWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(maxWorkersOverride.Swap(int32(n)))
}

// workerCount sizes the pool for a job of rows output rows totalling
// workBytes of destination bytes.
func workerCount(rows, workBytes int) int {
	w := int(maxWorkersOverride.Load())
	if w == 0 {
		if int64(workBytes) < parallelCutover.Load() {
			return 1
		}
		w = runtime.GOMAXPROCS(0)
	}
	if w > rows {
		w = rows
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forEachRow runs fn(i) for every row in [0, rows), fanning out to a
// striding worker pool when the job is big enough. fn must be safe to
// run concurrently for distinct rows.
func forEachRow(rows, workBytes int, fn func(i int)) {
	if rows <= 0 {
		return
	}
	w := workerCount(rows, workBytes)
	if w <= 1 {
		codecMetrics.serialJobs.Inc()
		for i := 0; i < rows; i++ {
			fn(i)
		}
		return
	}
	codecMetrics.parallelJobs.Inc()
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func(k int) {
			defer wg.Done()
			for i := k; i < rows; i += w {
				fn(i)
			}
		}(k)
	}
	wg.Wait()
}
