package erasure

import "mobweb/internal/obs"

// Package-wide codec counters. They are zero-valued obs metrics (always
// usable, atomic, no registration needed) rather than registry-resolved
// pointers because coders are shared process-wide (see Shared) and have
// no natural owner to thread a registry through; the cost is one atomic
// add per decode-path event, nowhere near the per-byte GF(2^8) work it
// annotates. A front end that owns an obs.Registry exposes them by
// registering MetricsProbe under a name like "erasure".
var codecMetrics struct {
	// invHits and invMisses aggregate every coder's inverse-submatrix
	// cache (the per-coder split remains available via InvCacheStats).
	invHits, invMisses obs.Counter
	// parallelJobs counts codec calls that fanned out to the worker
	// pool; serialJobs counts calls that stayed below the cutover.
	parallelJobs, serialJobs obs.Counter
	// parityEncodes counts lazily materialized parity rows.
	parityRows obs.Counter
}

// MetricsProbe returns the package-wide codec counters in snapshot form,
// for obs.Registry.RegisterProbe.
func MetricsProbe() any {
	return map[string]int64{
		"inv_hits":      codecMetrics.invHits.Value(),
		"inv_misses":    codecMetrics.invMisses.Value(),
		"parallel_jobs": codecMetrics.parallelJobs.Value(),
		"serial_jobs":   codecMetrics.serialJobs.Value(),
		"parity_rows":   codecMetrics.parityRows.Value(),
	}
}
