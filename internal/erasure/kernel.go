package erasure

import "mobweb/internal/gf256"

// mulAdd is the dst ^= c*src kernel; indirected through a package-level
// binding so benchmarks can compare alternative kernels.
func mulAdd(c byte, dst, src []byte) {
	gf256.MulAddSlice(c, dst, src)
}
