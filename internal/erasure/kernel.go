package erasure

import "mobweb/internal/gf256"

// accumulateRow computes dst[i] ^= Σ_j row[j]*srcs[j][i] — one dispersal
// (or inverse) matrix row applied to its source packets. It rides the
// fused gather kernel in gf256, which folds several sources into each
// destination pass and selects the fastest byte-level implementation for
// the hardware at init (see gf256/kernel.go; pin with MOBWEB_GF_KERNEL).
func accumulateRow(dst, row []byte, srcs [][]byte) {
	gf256.MulAddRows(row, dst, srcs)
}
