package erasure

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestEncodeParityRowMatchesEncodeParity checks row-at-a-time encoding
// against the whole-tail path: every row must be byte-identical, since
// the frame cache mixes the two freely.
func TestEncodeParityRowMatchesEncodeParity(t *testing.T) {
	const m, n = 5, 9
	c, err := NewCoder(m, n)
	if err != nil {
		t.Fatal(err)
	}
	raw := randomPackets(rand.New(rand.NewSource(7)), m, 64)
	whole, err := c.EncodeParity(raw)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < n-m; row++ {
		got, err := c.EncodeParityRow(raw, row)
		if err != nil {
			t.Fatalf("row %d: %v", row, err)
		}
		if !bytes.Equal(got, whole[row]) {
			t.Fatalf("row %d differs from EncodeParity output", row)
		}
	}
}

func TestEncodeParityRowBounds(t *testing.T) {
	c, err := NewCoder(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	raw := randomPackets(rand.New(rand.NewSource(8)), 4, 16)
	for _, row := range []int{-1, 2, 100} {
		if _, err := c.EncodeParityRow(raw, row); err == nil {
			t.Fatalf("row %d: expected out-of-range error", row)
		}
	}
	// Raw validation still applies.
	if _, err := c.EncodeParityRow(raw[:2], 0); err == nil {
		t.Fatal("short raw: expected error")
	}
}

// TestEncodeParityRowIsolated verifies a single row encode does not
// disturb later whole-tail results and returns a private slice.
func TestEncodeParityRowIsolated(t *testing.T) {
	const m, n = 3, 6
	c, err := NewCoder(m, n)
	if err != nil {
		t.Fatal(err)
	}
	raw := randomPackets(rand.New(rand.NewSource(9)), m, 32)
	first, err := c.EncodeParityRow(raw, 1)
	if err != nil {
		t.Fatal(err)
	}
	clobber := append([]byte(nil), first...)
	for i := range first {
		first[i] ^= 0xff
	}
	again, err := c.EncodeParityRow(raw, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, clobber) {
		t.Fatal("EncodeParityRow result aliases internal state")
	}
}
