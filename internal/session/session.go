// Package session orchestrates the complete mobile browsing loop the
// paper describes, as one reusable client-side component: keyword search,
// personalized re-ranking against the user profile, skimming documents at
// a relevance threshold F, full reads, relevance feedback into the
// profile, and idle-time prefetching of the hits the user is most likely
// to open next. It glues the transport client, the profile, and the
// prefetch planner together with the policies the examples demonstrate
// individually.
package session

import (
	"context"
	"fmt"
	"sort"
	"time"

	"mobweb/internal/channel"
	"mobweb/internal/content"
	"mobweb/internal/document"
	"mobweb/internal/prefetch"
	"mobweb/internal/profile"
	"mobweb/internal/transport"
)

// Options tunes the browsing policy.
type Options struct {
	// LOD is the ranking level of detail for fetches; zero means
	// paragraph (the paper's best performer).
	LOD document.LOD
	// Notion ranks units; zero means QIC.
	Notion content.Notion
	// RelevanceThreshold is F: skims stop once this information content
	// arrived. Zero means 0.3.
	RelevanceThreshold float64
	// ProfileBlend is β, the weight of profile affinity when re-ranking
	// search hits; zero keeps pure search order.
	ProfileBlend float64
	// ThinkTime is the idle window after each interaction in which the
	// session prefetches; zero disables prefetching.
	ThinkTime time.Duration
	// BandwidthBPS converts think time into a packet budget; zero means
	// the paper's 19.2 kbps.
	BandwidthBPS float64
	// FrameBytes is the on-air frame size for budget computation; zero
	// means 260 (Table 2).
	FrameBytes int
	// MaxRounds caps retransmission rounds per fetch; zero means 20.
	MaxRounds int
	// PrefetchTopK caps how many ranked hits the think-time window
	// speculates on (profile.PredictTopK over the blended scores); zero
	// keeps every hit in the plan.
	PrefetchTopK int
}

func (o Options) withDefaults() Options {
	if o.LOD == 0 {
		o.LOD = document.LODParagraph
	}
	if o.Notion == 0 {
		o.Notion = content.NotionQIC
	}
	if o.RelevanceThreshold == 0 {
		o.RelevanceThreshold = 0.3
	}
	if o.BandwidthBPS == 0 {
		o.BandwidthBPS = channel.DefaultBandwidthBPS
	}
	if o.FrameBytes == 0 {
		o.FrameBytes = 260
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = 20
	}
	return o
}

// Session is one user's browsing session over one connection. Not safe
// for concurrent use (a session models a single user).
type Session struct {
	client *transport.Client
	prof   *profile.Profile
	opts   Options
	query  string
	hits   []RankedHit
	// skimmed caches skim text per document for feedback on Discard.
	skimmed map[string]string
	stats   Stats
}

// RankedHit is a search hit after personalization.
type RankedHit struct {
	// Name and Title identify the document.
	Name, Title string
	// SearchScore is the engine's query similarity.
	SearchScore float64
	// Blended folds in profile affinity with weight β.
	Blended float64
}

// Stats aggregates session-level accounting.
type Stats struct {
	// Searches, Skims, Reads and Discards count interactions.
	Searches, Skims, Reads, Discards int
	// PacketsReceived counts frames over the wire, including frames
	// received by prefetch windows (which may end before their allocated
	// budget for short documents).
	PacketsReceived int
	// PrefetchedUsed counts prefetched packets consumed by later
	// fetches.
	PrefetchedUsed int
}

// New starts a session. The profile may be nil (no personalization, no
// feedback).
func New(client *transport.Client, prof *profile.Profile, opts Options) (*Session, error) {
	if client == nil {
		return nil, fmt.Errorf("session: nil client")
	}
	return &Session{
		client:  client,
		prof:    prof,
		opts:    opts.withDefaults(),
		skimmed: make(map[string]string),
	}, nil
}

// Stats returns the session's accounting so far.
func (s *Session) Stats() Stats { return s.stats }

// Search queries the server, re-ranks hits against the profile, and
// prefetches the most promising ones into the idle think-time window.
func (s *Session) Search(query string, limit int) ([]RankedHit, error) {
	return s.SearchContext(context.Background(), query, limit)
}

// SearchContext is Search bounded by a context: cancellation interrupts
// the query and any prefetching riding the idle window after it.
func (s *Session) SearchContext(ctx context.Context, query string, limit int) ([]RankedHit, error) {
	hits, err := s.client.SearchContext(ctx, query, limit)
	if err != nil {
		return nil, err
	}
	s.stats.Searches++
	s.query = query
	ranked := make([]RankedHit, len(hits))
	for i, h := range hits {
		ranked[i] = RankedHit{
			Name:        h.Name,
			Title:       h.Title,
			SearchScore: h.Score,
			Blended:     h.Score,
		}
		if s.prof != nil && s.opts.ProfileBlend > 0 {
			// Client-side personalization uses the hit title plus any
			// previously skimmed text of the document.
			affinity := s.prof.ScoreText(h.Title + " " + s.skimmed[h.Name])
			beta := s.opts.ProfileBlend
			ranked[i].Blended = (1-beta)*h.Score + beta*affinity
		}
	}
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].Blended > ranked[j].Blended })
	s.hits = ranked

	if err := s.prefetchHits(ctx); err != nil {
		return nil, err
	}
	return ranked, nil
}

// prefetchHits spends the think-time budget on the ranked hits.
func (s *Session) prefetchHits(ctx context.Context) error {
	if s.opts.ThinkTime <= 0 || len(s.hits) == 0 {
		return nil
	}
	budget := prefetch.Budget(s.opts.ThinkTime.Seconds(), s.opts.BandwidthBPS, s.opts.FrameBytes)
	if budget == 0 {
		return nil
	}
	hits := s.hits
	if k := s.opts.PrefetchTopK; k > 0 && len(hits) > k {
		// Shortlist deterministically by blended score before planning —
		// the speculative budget goes to the documents the profile says
		// the user opens next, not to the whole hit list.
		pc := make([]profile.Candidate, len(hits))
		for i, h := range hits {
			pc[i] = profile.Candidate{Name: h.Name, Score: h.Blended + 1e-9}
		}
		keep := make(map[string]bool, k)
		for _, p := range profile.PredictTopK(pc, k) {
			keep[p.Name] = true
		}
		short := make([]RankedHit, 0, k)
		for _, h := range hits {
			if keep[h.Name] {
				short = append(short, h)
			}
		}
		hits = short
	}
	cands := make([]prefetch.Candidate, len(hits))
	for i, h := range hits {
		// Packet counts are unknown before the first header exchange;
		// budget generously and let the server's stream end early.
		cands[i] = prefetch.Candidate{
			Name:         h.Name,
			Score:        h.Blended + 1e-9,
			TotalPackets: budget,
		}
	}
	allocs, err := prefetch.Plan(cands, budget)
	if err != nil {
		return err
	}
	for _, alloc := range allocs {
		got, err := s.client.PrefetchContext(ctx, s.fetchOptions(alloc.Name), alloc.Packets)
		// Frames received before a failure are still primed; account for
		// them either way.
		s.stats.PacketsReceived += got.Received
		if err != nil {
			return fmt.Errorf("prefetch %s: %w", alloc.Name, err)
		}
	}
	return nil
}

func (s *Session) fetchOptions(doc string) transport.FetchOptions {
	return transport.FetchOptions{
		Doc:       doc,
		Query:     s.query,
		LOD:       s.opts.LOD,
		Notion:    s.opts.Notion,
		Caching:   true,
		MaxRounds: s.opts.MaxRounds,
	}
}

// Skim fetches a document only up to the relevance threshold F and
// returns what arrived, so the user can judge it.
func (s *Session) Skim(doc string) (*transport.FetchResult, error) {
	return s.SkimContext(context.Background(), doc)
}

// SkimContext is Skim bounded by a context.
func (s *Session) SkimContext(ctx context.Context, doc string) (*transport.FetchResult, error) {
	opts := s.fetchOptions(doc)
	opts.StopAtIC = s.opts.RelevanceThreshold
	res, err := s.client.FetchContext(ctx, opts)
	if err != nil {
		return nil, err
	}
	s.stats.Skims++
	s.stats.PacketsReceived += res.PacketsReceived
	s.stats.PrefetchedUsed += res.PrefetchedPackets
	s.skimmed[doc] = renderedText(res)
	return res, nil
}

// Read downloads the document in full and reinforces the profile.
func (s *Session) Read(doc string) (*transport.FetchResult, error) {
	return s.ReadContext(context.Background(), doc)
}

// ReadContext is Read bounded by a context.
func (s *Session) ReadContext(ctx context.Context, doc string) (*transport.FetchResult, error) {
	res, err := s.client.FetchContext(ctx, s.fetchOptions(doc))
	if err != nil {
		return nil, err
	}
	s.stats.Reads++
	s.stats.PacketsReceived += res.PacketsReceived
	s.stats.PrefetchedUsed += res.PrefetchedPackets
	if s.prof != nil {
		text := string(res.Body)
		if text == "" {
			text = renderedText(res)
		}
		s.prof.ObserveText(text, s.query, true, 1)
	}
	return res, nil
}

// Discard records the user's negative judgment of a previously skimmed
// document, depressing its topics in the profile.
func (s *Session) Discard(doc string) {
	s.stats.Discards++
	if s.prof == nil {
		return
	}
	text := s.skimmed[doc]
	if text == "" {
		return
	}
	s.prof.ObserveText(text, "", false, s.opts.RelevanceThreshold)
}

func renderedText(res *transport.FetchResult) string {
	out := ""
	for _, u := range res.Rendered {
		out += u.Text + "\n"
	}
	return out
}
