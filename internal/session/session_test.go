package session

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"mobweb/internal/channel"
	"mobweb/internal/corpus"
	"mobweb/internal/profile"
	"mobweb/internal/search"
	"mobweb/internal/textproc"
	"mobweb/internal/transport"
)

func startClient(t *testing.T, alpha float64) *transport.Client {
	t.Helper()
	engine := search.NewEngine(textproc.Options{})
	docs, err := corpus.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		if err := engine.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	opts := transport.ServerOptions{}
	if alpha > 0 {
		model, err := channel.NewBernoulli(alpha, 3)
		if err != nil {
			t.Fatal(err)
		}
		opts.Injector = transport.NewModelInjector(model)
	}
	srv, err := transport.NewServer(engine, opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	client, err := transport.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client.Timeout = 10 * time.Second
	t.Cleanup(func() { client.Close() })
	return client
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, Options{}); err == nil {
		t.Error("nil client accepted")
	}
}

func TestSearchSkimReadLoop(t *testing.T) {
	client := startClient(t, 0)
	prof, err := profile.New(profile.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(client, prof, Options{})
	if err != nil {
		t.Fatal(err)
	}

	hits, err := s.Search("mobile web browsing", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits")
	}

	skim, err := s.Skim(hits[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if skim.InfoContent < 0.3 {
		t.Errorf("skim IC %v below threshold", skim.InfoContent)
	}
	if skim.Body != nil {
		t.Error("skim downloaded the whole document")
	}

	read, err := s.Read(hits[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if read.Body == nil {
		t.Fatal("read incomplete")
	}
	if prof.Events() != 1 {
		t.Errorf("profile events = %d, want 1 after Read", prof.Events())
	}

	stats := s.Stats()
	if stats.Searches != 1 || stats.Skims != 1 || stats.Reads != 1 {
		t.Errorf("stats %+v", stats)
	}
	if stats.PacketsReceived == 0 {
		t.Error("no packets accounted")
	}
}

func TestDiscardFeedsNegativeSignal(t *testing.T) {
	client := startClient(t, 0)
	prof, err := profile.New(profile.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(client, prof, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Search("vector retrieval relevance", 5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Skim("ir-retrieval.xml"); err != nil {
		t.Fatal(err)
	}
	s.Discard("ir-retrieval.xml")
	if prof.Events() != 1 {
		t.Errorf("profile events = %d, want 1 after Discard", prof.Events())
	}
	if got := prof.ScoreText("vector space retrieval relevance feedback"); got >= 0 {
		t.Errorf("discarded topic score = %v, want < 0", got)
	}
	if s.Stats().Discards != 1 {
		t.Error("discard not counted")
	}
}

func TestPersonalizationReRanks(t *testing.T) {
	client := startClient(t, 0)
	prof, err := profile.New(profile.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(client, prof, Options{ProfileBlend: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	// "caching" matches both the draft (mobile) and the survey page.
	before, err := s.Search("caching documents", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) < 2 {
		t.Skip("need at least two hits for a re-ranking test")
	}
	// Read the second-ranked document; its topics strengthen.
	target := before[1].Name
	if _, err := s.Skim(target); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(target); err != nil {
		t.Fatal(err)
	}
	after, err := s.Search("caching documents", 5)
	if err != nil {
		t.Fatal(err)
	}
	posBefore, posAfter := position(before, target), position(after, target)
	if posAfter > posBefore {
		t.Errorf("read document fell from rank %d to %d", posBefore, posAfter)
	}
	if posAfter != 0 {
		t.Logf("note: target at rank %d after feedback (blended scores: %+v)", posAfter, after)
	}
}

func TestThinkTimePrefetchingReducesFetchTraffic(t *testing.T) {
	client := startClient(t, 0)
	s, err := New(client, nil, Options{ThinkTime: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	hits, err := s.Search("mobile web browsing", 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Read(hits[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if res.PrefetchedPackets == 0 {
		t.Error("think-time prefetch contributed nothing to the read")
	}
	if s.Stats().PrefetchedUsed == 0 {
		t.Error("prefetch usage not accounted")
	}
}

func TestSessionOverLossyChannel(t *testing.T) {
	client := startClient(t, 0.3)
	s, err := New(client, nil, Options{ThinkTime: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	hits, err := s.Search("mobile web browsing", 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Read(hits[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if res.Body == nil {
		t.Fatal("read over lossy channel incomplete")
	}
}

func position(hits []RankedHit, name string) int {
	for i, h := range hits {
		if h.Name == name {
			return i
		}
	}
	return len(hits)
}

func TestSessionContextCancellation(t *testing.T) {
	client := startClient(t, 0)
	prof, err := profile.New(profile.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := New(client, prof, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the user walked out of coverage before asking
	if _, err := sess.SearchContext(ctx, "mobile web", 5); !errors.Is(err, context.Canceled) {
		t.Errorf("SearchContext error %v, want context.Canceled", err)
	}
	if _, err := sess.SkimContext(ctx, corpus.DraftName); !errors.Is(err, context.Canceled) {
		t.Errorf("SkimContext error %v, want context.Canceled", err)
	}
	if _, err := sess.ReadContext(ctx, corpus.DraftName); !errors.Is(err, context.Canceled) {
		t.Errorf("ReadContext error %v, want context.Canceled", err)
	}
	// The connection stays usable for a live context afterwards.
	if _, err := sess.Search("mobile web", 5); err != nil {
		t.Errorf("session unusable after cancelled calls: %v", err)
	}
}
