package mobweb

import (
	"testing"
)

func TestQueryVectorFacade(t *testing.T) {
	qv := QueryVector("mobile mobile web")
	if qv["mobile"] != 2 || qv["web"] != 1 {
		t.Errorf("QueryVector = %v", qv)
	}
}

func TestSimImprovementFacade(t *testing.T) {
	p := DefaultSimParams()
	p.Documents = 10
	p.Repetitions = 1
	p.Caching = true
	p.Irrelevant = 1
	p.Threshold = 0.2
	imp, err := SimImprovement(p, LODParagraph)
	if err != nil {
		t.Fatal(err)
	}
	if imp <= 0.8 {
		t.Errorf("improvement = %v, implausible", imp)
	}
}

func TestPrefetchFacade(t *testing.T) {
	budget := PrefetchBudget(10, 19200, 260)
	if budget != 92 {
		t.Errorf("budget = %d, want 92", budget)
	}
	allocs, err := PlanPrefetch([]PrefetchCandidate{
		{Name: "a", Score: 1, TotalPackets: 60},
		{Name: "b", Score: 0.5, TotalPackets: 60},
	}, budget)
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs) != 2 || allocs[0].Name != "a" || allocs[0].Packets != 60 {
		t.Errorf("allocs = %+v", allocs)
	}
}

func TestAlphaEstimatorFacade(t *testing.T) {
	est, err := NewAlphaEstimator(0.3)
	if err != nil {
		t.Fatal(err)
	}
	est.ObserveWindow(3, 10)
	if got := est.ValueOr(0); got != 0.3 {
		t.Errorf("estimate = %v, want 0.3", got)
	}
	if _, err := NewAlphaEstimator(2); err == nil {
		t.Error("bad weight accepted")
	}
}

func TestClusterFacade(t *testing.T) {
	c, err := NewCluster("site", "a.xml")
	if err != nil {
		t.Fatal(err)
	}
	docA, err := ParseXML([]byte(`<doc><title>A</title><section><paragraph>mobile link hub</paragraph></section></doc>`), "a.xml")
	if err != nil {
		t.Fatal(err)
	}
	docB, err := ParseXML([]byte(`<doc><title>B</title><section><paragraph>mobile web browsing details here</paragraph></section></doc>`), "b.xml")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddPage(docA, []string{"b.xml"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPage(docB, nil); err != nil {
		t.Fatal(err)
	}
	scores, err := c.Scores(QueryVector("mobile web"))
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 2 {
		t.Fatalf("scores = %v", scores)
	}
	composed, err := c.Compose(QueryVector("mobile web"))
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(composed)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := an.Plan("mobile web", PlanConfig{LOD: LODSection, PacketSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if plan.N() < plan.M() {
		t.Error("implausible plan shape")
	}
}

func TestProfileFacadeObserve(t *testing.T) {
	doc, err := ParseXML([]byte(`<doc><title>W</title><section><paragraph>wireless erasure coding for mobile packets</paragraph></section></doc>`), "w.xml")
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(doc)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := NewProfile(ProfileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := prof.Observe(ProfileFeedback{SC: an.SC, Relevant: true, Query: "wireless"}); err != nil {
		t.Fatal(err)
	}
	if prof.Score(an.SC) <= 0 {
		t.Error("profile did not learn")
	}
}
