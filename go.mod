module mobweb

go 1.22
