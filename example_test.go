package mobweb_test

import (
	"fmt"

	"mobweb"
)

// ExampleChooseCooked sizes the redundancy for the paper's default
// document (M = 40 raw packets) on a channel corrupting 10% of packets,
// targeting a 95% chance of single-round delivery.
func ExampleChooseCooked() {
	n, err := mobweb.ChooseCooked(40, 0.1, 0.95)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("M=40 α=0.1 S=95%% → N=%d (γ=%.2f)\n", n, float64(n)/40)
	// Output: M=40 α=0.1 S=95% → N=48 (γ=1.20)
}

// ExampleAnalyze runs the five-stage pipeline on a small document and
// prints the top-ranked unit for a query.
func ExampleAnalyze() {
	src := `<doc><title>T</title>
	<section><title>Coding</title>
	<paragraph>Vandermonde matrices disperse packets.</paragraph></section>
	<section><title>Browsing</title>
	<paragraph>Mobile web browsing needs mobile bandwidth care.</paragraph></section>
	</doc>`
	doc, err := mobweb.ParseXML([]byte(src), "t.xml")
	if err != nil {
		fmt.Println(err)
		return
	}
	an, err := mobweb.Analyze(doc)
	if err != nil {
		fmt.Println(err)
		return
	}
	plan, err := an.Plan("mobile web", mobweb.PlanConfig{
		LOD:        mobweb.LODSection,
		Notion:     mobweb.NotionQIC,
		PacketSize: 32,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("top unit: %s\n", plan.Segments()[0].Unit.Title)
	// Output: top unit: Browsing
}

// ExampleReceiver demonstrates loss tolerance: drop a third of the cooked
// packets and still reconstruct.
func ExampleReceiver() {
	src := `<doc><section><paragraph>any M of N cooked packets reconstruct the document</paragraph></section></doc>`
	doc, err := mobweb.ParseXML([]byte(src), "t.xml")
	if err != nil {
		fmt.Println(err)
		return
	}
	an, err := mobweb.Analyze(doc)
	if err != nil {
		fmt.Println(err)
		return
	}
	plan, err := an.Plan("", mobweb.PlanConfig{PacketSize: 8, Gamma: 1.5})
	if err != nil {
		fmt.Println(err)
		return
	}
	rcv, err := mobweb.NewReceiver(plan)
	if err != nil {
		fmt.Println(err)
		return
	}
	for seq := 0; seq < plan.N(); seq++ {
		if seq%3 == 0 {
			continue // lost on the wireless hop
		}
		frame, err := plan.Frame(seq)
		if err != nil {
			fmt.Println(err)
			return
		}
		if _, _, err := rcv.AddFrame(frame); err != nil {
			fmt.Println(err)
			return
		}
	}
	body, err := rcv.Reconstruct()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("reconstructed %d bytes despite 33%% loss\n", len(body))
	// Output: reconstructed 51 bytes despite 33% loss
}
