# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test race bench bench-json bench-load bench-fleet bench-fountain bench-replay cover figures paperscale fuzz lint lint-json vulncheck verify clean

all: build test

build:
	go build ./...
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# The repo's own invariant analyzers (planmut, framemut, gfarith,
# lockscope, errwrap, lockorder, goroleak, nondet, hotalloc) plus the
# selected go vet passes, gated on the findings baseline; see DESIGN.md
# §8 and §13.
lint:
	go run ./cmd/mobweblint -baseline lint.baseline ./...

# Machine-readable findings report (the CI artifact). Runs without the
# baseline so the report is the complete picture, and without vet (vet
# has no JSON mode); always exits 0 — the gate is `make lint`.
lint-json:
	@mkdir -p results
	go run ./cmd/mobweblint -json -vet=false ./... > results/mobweblint.json || true
	@echo "wrote results/mobweblint.json"

# Known-vulnerability scan. Best effort: govulncheck is an external tool
# and needs network access for its database, so its absence (or an
# offline environment) warns instead of failing the gate.
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || echo "warning: govulncheck failed (offline vulndb?); continuing"; \
	else \
		echo "warning: govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# The CI gate: static checks plus the full suite under the race detector
# (the planner's concurrent plan cache and core's lazy parity encoding
# are exercised by dedicated -race stress tests).
verify: lint vulncheck
	go vet ./...
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# Full-suite statement coverage with a regression floor: the per-package
# summary and the total land in results/coverage.txt, and the target
# fails if total statement coverage drops below COVER_FLOOR percent.
# Override the floor with `make cover COVER_FLOOR=85`.
COVER_FLOOR ?= 78

cover:
	@mkdir -p results
	go test -coverprofile=coverage.out ./... > results/coverage.txt
	@go tool cover -func=coverage.out | tail -n 1 >> results/coverage.txt
	@cat results/coverage.txt
	@go tool cover -func=coverage.out | tail -n 1 | \
		awk -v floor=$(COVER_FLOOR) '{ sub(/%/, "", $$3); \
		if ($$3 + 0 < floor) { printf "FAIL: coverage %.1f%% below floor %s%%\n", $$3, floor; exit 1 } \
		printf "coverage %.1f%% meets floor %s%%\n", $$3, floor }'

# Erasure-codec kernel matrix (kernels × M × packet size, plus the
# parallel worker sweep): machine-readable BENCH_erasure.json at the repo
# root and the human table under results/. See DESIGN.md §10.
bench-json:
	go run ./cmd/erasurebench -json BENCH_erasure.json -txt results/erasure-kernel-bench.txt

# Open-loop load generator against the frame cache: 1000 Zipf-distributed
# clients over 10 documents, cached pass vs cache-disabled baseline, with
# the acceptance gates (hit rate, encode/marshal work reduction) checked
# in-process. BENCH_load.json at the repo root, human table under
# results/. See DESIGN.md §12.
bench-load:
	go run ./cmd/mrtload -json BENCH_load.json -txt results/framecache-bench.txt -min-hit-rate 0.9

# Sharded-fleet robustness run: a front over three in-process replicas,
# Zipf load with per-packet pacing so streams are long enough for the
# seeded mid-run kill of the hottest replica to land mid-stream. Gates:
# zero outright failures among admitted fetches, zero byte mismatches
# against the pre-kill reference, and a completed-fetch floor.
# BENCH_fleet.json at the repo root, human table under results/. See
# DESIGN.md §14.
bench-fleet:
	go run ./cmd/mrtload -fleet 3 -clients 200 -docs 8 -doc-kb 12 \
		-fleet-delay 2ms -concurrency 32 -seed 1 -min-completed 0.95 \
		-json BENCH_fleet.json -txt results/fleet-bench.txt

# Rateless fountain codec vs adaptive-γ Vandermonde across a channel
# corruption grid (α 0.05–0.4), plus the single-stream broadcast fan-out
# work ratio at 32 subscribers. Gated: every fountain fetch must finish
# in one round, mean reception overhead ≤ 15%, fountain must move fewer
# bytes than Vandermonde at α ≥ 0.2, and broadcast work must stay under
# 2× the single-subscriber cost. BENCH_fountain.json at the repo root,
# human table under results/. See DESIGN.md §15.
bench-fountain:
	go run ./cmd/erasurebench -fountain -gate \
		-json BENCH_fountain.json -txt results/fountain-bench.txt

# Deterministic session-replay harness for the persistent packet store
# and the speculative prefetcher: scripted browse/skim/idle/kill-restart
# sessions replayed twice (store+prefetch off vs on) over the identical
# seeded workload. Gates: zero packets refetched after restart, zero
# resume bytes for fully-read documents, byte-identical bodies, and
# foreground p99 parity (on ≤ 1.10× off). BENCH_replay.json at the repo
# root, the generated trace under results/. See DESIGN.md §16.
bench-replay:
	go run ./cmd/mrtreplay -json BENCH_replay.json -trace-out results/replay-trace.json

# Regenerate every table and figure at the default reduced scale.
figures:
	go run ./cmd/mrtfigures -exp all

# Selected Figure 4 cells at the paper's full 200x50 workload.
paperscale:
	MOBWEB_PAPERSCALE=1 go test ./internal/sim -run TestPaperScaleSpotChecks -v

fuzz:
	go test -fuzz=FuzzKernels -fuzztime=30s ./internal/gf256
	go test -fuzz=FuzzParseHTML -fuzztime=30s ./internal/markup
	go test -fuzz=FuzzParseXML -fuzztime=30s ./internal/markup
	go test -fuzz=FuzzUnmarshal -fuzztime=30s ./internal/packet
	go test -fuzz=FuzzRequestDecode -fuzztime=30s ./internal/transport
	go test -fuzz=FuzzFountainRoundtrip -fuzztime=30s ./internal/fountain
	go test -fuzz=FuzzStoreRecover -fuzztime=30s ./internal/store

clean:
	go clean ./...
