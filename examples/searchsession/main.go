// Searchsession: a browsing session the way the paper's introduction
// motivates it — a user searches, skims several candidate documents at a
// coarse resolution, discards irrelevant ones after a fraction of their
// information content, and only downloads the relevant one in full. The
// session tallies how much bandwidth early termination saved.
package main

import (
	"fmt"
	"net"
	"os"

	"mobweb"
	"mobweb/internal/corpus"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "searchsession:", err)
		os.Exit(1)
	}
}

func run() error {
	engine := mobweb.NewEngine()
	docs, err := corpus.LoadAll()
	if err != nil {
		return err
	}
	for _, d := range docs {
		if err := engine.Add(d); err != nil {
			return err
		}
	}
	// A mildly lossy channel, as on a moving client.
	injector, err := mobweb.BernoulliInjector(0.15, 5)
	if err != nil {
		return err
	}
	srv, err := mobweb.NewServer(engine, mobweb.ServerOptions{Injector: injector})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		srv.Serve(ln)
	}()
	defer func() {
		srv.Close()
		<-serveDone
	}()

	client, err := mobweb.Dial(ln.Addr().String())
	if err != nil {
		return err
	}
	defer client.Close()

	const query = "erasure codes for wireless transmission"
	hits, err := client.Search(query, 10)
	if err != nil {
		return err
	}
	if len(hits) == 0 {
		return fmt.Errorf("no hits for %q", query)
	}
	fmt.Printf("query %q matched %d documents\n\n", query, len(hits))

	totalReceived := 0
	savedEstimate := 0
	var relevant string
	for i, h := range hits {
		// Skim: fetch at paragraph LOD, stop after 30% of the content —
		// enough to judge relevance (the paper's F).
		skim, err := client.Fetch(mobweb.FetchOptions{
			Doc:       h.Name,
			Query:     query,
			Notion:    mobweb.NotionQIC,
			LOD:       mobweb.LODParagraph,
			StopAtIC:  0.3,
			Caching:   true,
			MaxRounds: 20,
		})
		if err != nil {
			return err
		}
		totalReceived += skim.PacketsReceived
		fmt.Printf("%d. skimmed %-22s IC %.2f in %d packets, %d units visible\n",
			i+1, h.Name, skim.InfoContent, skim.PacketsReceived, len(skim.Rendered))

		// "Relevance judgment": the user reads the skimmed units; here we
		// accept the top-scoring hit and discard the rest.
		if i == 0 {
			relevant = h.Name
		} else if skim.Body == nil {
			// Early termination on an irrelevant document: everything
			// after the skim would have been transmitted by the
			// conventional paradigm.
			layoutN := skim.PacketsReceived * 3 // rough: stopped in the first third
			savedEstimate += layoutN - skim.PacketsReceived
		}
	}

	fmt.Printf("\nuser picks %s; downloading it in full...\n", relevant)
	full, err := client.Fetch(mobweb.FetchOptions{
		Doc:       relevant,
		Query:     query,
		Notion:    mobweb.NotionQIC,
		LOD:       mobweb.LODParagraph,
		Caching:   true,
		MaxRounds: 30,
	})
	if err != nil {
		return err
	}
	if full.Body == nil {
		return fmt.Errorf("full download stalled")
	}
	totalReceived += full.PacketsReceived
	fmt.Printf("full document: %d bytes in %d packets (%d corrupted, %d rounds)\n",
		len(full.Body), full.PacketsReceived, full.PacketsCorrupted, full.Rounds)
	fmt.Printf("\nsession total: %d packets on air; early termination saved roughly %d more\n",
		totalReceived, savedEstimate)
	return nil
}
