// Personalized: user-profiling with relevance feedback (§6's extension).
// A user repeatedly searches an ambiguous query; the profile learns from
// which documents they read versus discard, re-ranks later searches, and
// drives idle-time prefetching of the documents the user is most likely
// to open next.
package main

import (
	"fmt"
	"os"

	"mobweb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "personalized:", err)
		os.Exit(1)
	}
}

// corpusDoc builds one small document on a topic.
func corpusDoc(name, title string, paragraphs ...string) (*mobweb.Analysis, error) {
	xml := "<document><title>" + title + "</title><section><title>" + title + "</title>"
	for _, p := range paragraphs {
		xml += "<paragraph>" + p + "</paragraph>"
	}
	xml += "</section></document>"
	doc, err := mobweb.ParseXML([]byte(xml), name)
	if err != nil {
		return nil, err
	}
	return mobweb.Analyze(doc)
}

func run() error {
	// A small collection where the query "caching" is ambiguous: CPU
	// caches versus mobile web caching.
	specs := []struct {
		name, title string
		paragraphs  []string
	}{
		{"cpu-cache.xml", "CPU Cache Hierarchies", []string{
			"Processor caching hierarchies keep hot cache lines in small SRAM arrays.",
			"Set associative caching reduces processor stalls on memory access.",
		}},
		{"web-cache.xml", "Caching for Mobile Web Browsing", []string{
			"Caching intact packets lets a mobile client resume interrupted web transfers.",
			"Wireless browsing benefits from caching documents in local storage.",
		}},
		{"db-cache.xml", "Database Buffer Caching", []string{
			"Buffer pool caching holds database pages in memory between transactions.",
			"Eviction policies decide which cached pages a database discards.",
		}},
	}
	analyses := make(map[string]*mobweb.Analysis, len(specs))
	engine := mobweb.NewEngine()
	for _, s := range specs {
		an, err := corpusDoc(s.name, s.title, s.paragraphs...)
		if err != nil {
			return err
		}
		analyses[s.name] = an
		if err := engine.Add(an.Doc); err != nil {
			return err
		}
	}

	prof, err := mobweb.NewProfile(mobweb.ProfileConfig{})
	if err != nil {
		return err
	}

	rank := func(label string) ([]mobweb.Hit, error) {
		hits := engine.Search("caching", 10)
		// Blend search score with profile affinity (β = 0.6).
		for i := range hits {
			hits[i].Score = prof.Blend(hits[i].Score, hits[i].SC, 0.6)
		}
		for i := 0; i < len(hits); i++ {
			for j := i + 1; j < len(hits); j++ {
				if hits[j].Score > hits[i].Score {
					hits[i], hits[j] = hits[j], hits[i]
				}
			}
		}
		fmt.Printf("%s:\n", label)
		for i, h := range hits {
			fmt.Printf("  %d. %-16s %.4f\n", i+1, h.Name, h.Score)
		}
		return hits, nil
	}

	if _, err := rank("before any feedback"); err != nil {
		return err
	}

	// The user is a mobile-systems person: reads the web-caching paper in
	// full, discards the CPU and database ones early.
	fmt.Println("\nuser reads web-cache.xml fully; discards cpu-cache.xml and db-cache.xml at 20%")
	feedback := []mobweb.ProfileFeedback{
		{SC: analyses["web-cache.xml"].SC, Query: "caching mobile", Relevant: true},
		{SC: analyses["cpu-cache.xml"].SC, Relevant: false, FractionRead: 0.2},
		{SC: analyses["db-cache.xml"].SC, Relevant: false, FractionRead: 0.2},
	}
	for _, fb := range feedback {
		if err := prof.Observe(fb); err != nil {
			return err
		}
	}

	hits, err := rank("\nafter feedback (profile-blended)")
	if err != nil {
		return err
	}
	if hits[0].Name != "web-cache.xml" {
		return fmt.Errorf("personalization failed: top hit is %s", hits[0].Name)
	}
	fmt.Printf("\ntop interests: %v\n", prof.Terms()[:4])

	// Idle-time prefetching: allocate a 10 s think-time budget across the
	// re-ranked candidates, most likely first.
	cands := make([]mobweb.PrefetchCandidate, len(hits))
	for i, h := range hits {
		plan, err := analyses[h.Name].Plan("caching", mobweb.PlanConfig{PacketSize: 64})
		if err != nil {
			return err
		}
		cands[i] = mobweb.PrefetchCandidate{
			Name:          h.Name,
			Score:         h.Score,
			TotalPackets:  plan.N(),
			UsefulPackets: plan.M(),
		}
	}
	budget := mobweb.PrefetchBudget(10, 19200, 64+4)
	allocs, err := mobweb.PlanPrefetch(cands, budget)
	if err != nil {
		return err
	}
	fmt.Printf("\nidle 10 s at 19.2 kbps = %d packets; prefetch plan:\n", budget)
	for _, a := range allocs {
		fmt.Printf("  %-16s %d packets\n", a.Name, a.Packets)
	}
	if len(allocs) == 0 || allocs[0].Name != "web-cache.xml" {
		return fmt.Errorf("prefetch did not prioritize the profiled favourite")
	}
	return nil
}
