// Adaptive: §4.2 suggests choosing the redundancy ratio γ "as an adaptive
// function of the observed summarized value of α, using perhaps a kind of
// EWMA measure". This example walks a browsing session through a channel
// whose corruption rate drifts (good cell → bad cell → good cell) and
// compares a fixed γ = 1.5 against an EWMA-adaptive γ that re-targets a
// 95% single-round success probability from the observed corruption rate.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"mobweb"
)

// phase is one segment of the drifting channel.
type phase struct {
	alpha float64
	docs  int
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adaptive:", err)
		os.Exit(1)
	}
}

func run() error {
	phases := []phase{
		{alpha: 0.05, docs: 15},
		{alpha: 0.45, docs: 15}, // hand-off into a degraded cell
		{alpha: 0.10, docs: 15},
	}
	const m = 40 // raw packets per document (Table 2)

	fixedStalls, fixedPackets := browse(phases, m, nil)
	est, err := mobweb.NewAlphaEstimator(0.25)
	if err != nil {
		return err
	}
	adaptiveStalls, adaptivePackets := browse(phases, m, est)

	fmt.Println("strategy   stalled-rounds  packets-sent")
	fmt.Printf("fixed γ=1.5     %6d       %8d\n", fixedStalls, fixedPackets)
	fmt.Printf("EWMA-adaptive   %6d       %8d\n", adaptiveStalls, adaptivePackets)
	if adaptiveStalls > fixedStalls {
		return fmt.Errorf("adaptation failed to reduce stalls (%d vs %d)", adaptiveStalls, fixedStalls)
	}
	fmt.Println("\nadaptive γ trace during the bad cell:")
	// Re-run with verbose tracing of the chosen γ.
	est2, err := mobweb.NewAlphaEstimator(0.25)
	if err != nil {
		return err
	}
	traceBrowse(phases, m, est2)
	return nil
}

// browse simulates a session document by document. With a nil estimator
// it uses fixed γ = 1.5; otherwise it chooses N from the EWMA estimate
// targeting 95% success, and feeds each round's corruption counts back.
func browse(phases []phase, m int, est *mobweb.AlphaEstimator) (stalls, packets int) {
	rng := rand.New(rand.NewSource(42))
	for _, ph := range phases {
		for d := 0; d < ph.docs; d++ {
			n := chooseN(m, est)
			for round := 0; ; round++ {
				intact, corrupted := transmitRound(rng, n, ph.alpha)
				packets += n
				if est != nil {
					est.ObserveWindow(corrupted, n)
				}
				if intact >= m {
					break
				}
				stalls++
				// After a stall, re-choose N for the retransmission.
				n = chooseN(m, est)
			}
		}
	}
	return stalls, packets
}

func traceBrowse(phases []phase, m int, est *mobweb.AlphaEstimator) {
	rng := rand.New(rand.NewSource(42))
	doc := 0
	for _, ph := range phases {
		for d := 0; d < ph.docs; d++ {
			doc++
			n := chooseN(m, est)
			if doc%5 == 0 {
				alphaHat := est.ValueOr(0.1)
				fmt.Printf("  doc %2d: true α=%.2f, α̂=%.3f → N=%d (γ=%.2f)\n",
					doc, ph.alpha, alphaHat, n, float64(n)/float64(m))
			}
			intact, corrupted := transmitRound(rng, n, ph.alpha)
			est.ObserveWindow(corrupted, n)
			_ = intact
		}
	}
}

// chooseN picks the cooked-packet count: fixed γ = 1.5 without an
// estimator, else the negative-binomial optimum for the EWMA estimate.
func chooseN(m int, est *mobweb.AlphaEstimator) int {
	if est == nil {
		return m * 3 / 2
	}
	alphaHat := est.ValueOr(0.1)
	if alphaHat > 0.9 {
		alphaHat = 0.9
	}
	n, err := mobweb.ChooseCooked(m, alphaHat, 0.95)
	if err != nil || n < m {
		return m * 3 / 2
	}
	return n
}

// transmitRound sends n cooked packets through a Bernoulli(alpha) channel
// and reports intact and corrupted counts.
func transmitRound(rng *rand.Rand, n int, alpha float64) (intact, corrupted int) {
	for i := 0; i < n; i++ {
		if rng.Float64() < alpha {
			corrupted++
		} else {
			intact++
		}
	}
	return intact, corrupted
}
