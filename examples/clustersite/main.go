// Clustersite: the paper treats "a collection of hierarchically linked
// related pages" as one larger document (§1). This example builds a small
// linked site, computes cluster-level information content, derives a
// content-first reading order for a query, and fetches the pages in that
// order over a lossy transport — prefetching the linked pages the reader
// is most likely to open next during each page's think time.
package main

import (
	"fmt"
	"net"
	"os"

	"mobweb"
)

type pageSpec struct {
	name, title string
	links       []string
	paragraphs  []string
}

func sitePages() []pageSpec {
	return []pageSpec{
		{"index.xml", "Mobile Systems Handbook", []string{"radio.xml", "transport.xml"}, []string{
			"This handbook collects notes on building mobile information systems.",
		}},
		{"radio.xml", "Radio Basics", []string{"fading.xml"}, []string{
			"Radio links carry far fewer bits per second than wired networks.",
			"Signal strength varies as the client moves between cells.",
		}},
		{"fading.xml", "Fading and Error Bursts", nil, []string{
			"Multipath fading corrupts packets in bursts rather than uniformly.",
			"Error control must assume clustered packet corruption.",
		}},
		{"transport.xml", "Transmission over Weak Links", []string{"erasure.xml", "caching.xml"}, []string{
			"Transmitting mobile web documents over weak wireless links needs fault tolerance.",
			"Multi-resolution transmission sends high content units of mobile web documents first.",
		}},
		{"erasure.xml", "Erasure Coding", nil, []string{
			"Erasure codes reconstruct mobile web documents from any sufficient packet subset.",
			"Vandermonde dispersal keeps the first packets in clear text for mobile web browsing.",
		}},
		{"caching.xml", "Client Caching", nil, []string{
			"Caching intact packets across retransmission rounds saves wireless bandwidth.",
			"A mobile web client reconstructs documents sooner with cached packets.",
		}},
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "clustersite:", err)
		os.Exit(1)
	}
}

func run() error {
	// Build the cluster and the serving engine from the same pages.
	clu, err := mobweb.NewCluster("handbook", "index.xml")
	if err != nil {
		return err
	}
	engine := mobweb.NewEngine()
	links := make(map[string][]string)
	for _, p := range sitePages() {
		xml := "<document><title>" + p.title + "</title><section><title>" + p.title + "</title>"
		for _, text := range p.paragraphs {
			xml += "<paragraph>" + text + "</paragraph>"
		}
		xml += "</section></document>"
		doc, err := mobweb.ParseXML([]byte(xml), p.name)
		if err != nil {
			return err
		}
		if err := clu.AddPage(doc, p.links); err != nil {
			return err
		}
		if err := engine.Add(doc); err != nil {
			return err
		}
		links[p.name] = p.links
	}
	if err := clu.Validate(); err != nil {
		return err
	}

	const query = "mobile web transmission"
	qv := mobweb.QueryVector(query)

	scores, err := clu.Scores(qv)
	if err != nil {
		return err
	}
	fmt.Printf("cluster %q: %d pages; cluster-level content for %q:\n", clu.Name(), clu.Len(), query)
	for _, s := range scores {
		fmt.Printf("  %-14s IC %.3f  QIC %.3f\n", s.Name, s.IC, s.QIC)
	}

	order, err := clu.ReadingOrder(qv)
	if err != nil {
		return err
	}
	fmt.Printf("\ncontent-first reading order: %v\n", order)

	// Serve the pages over a lossy hop and browse them in reading order,
	// prefetching each page's most promising links during think time.
	injector, err := mobweb.BernoulliInjector(0.25, 9)
	if err != nil {
		return err
	}
	srv, err := mobweb.NewServer(engine, mobweb.ServerOptions{Injector: injector})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	defer func() {
		srv.Close()
		<-done
	}()
	client, err := mobweb.Dial(ln.Addr().String())
	if err != nil {
		return err
	}
	defer client.Close()

	fmt.Println("\nbrowsing session (α=0.25, caching on):")
	for _, page := range order {
		opts := mobweb.FetchOptions{Doc: page, Query: query, Caching: true, MaxRounds: 20}
		res, err := client.Fetch(opts)
		if err != nil {
			return err
		}
		if res.Body == nil {
			return fmt.Errorf("page %s did not reconstruct", page)
		}
		fmt.Printf("  %-14s %4d bytes, %2d pkts (%d prefetched, %d corrupted)\n",
			page, len(res.Body), res.PacketsReceived, res.PrefetchedPackets, res.PacketsCorrupted)

		// Think time: prefetch this page's links, best cluster-QIC first.
		cands, err := clu.PrefetchCandidates(page, qv, 256, 1.5)
		if err != nil {
			return err
		}
		budget := mobweb.PrefetchBudget(5, 19200, 260) // 5 s of idle air
		allocs, err := mobweb.PlanPrefetch(cands, budget)
		if err != nil {
			return err
		}
		for _, a := range allocs {
			got, err := client.Prefetch(mobweb.FetchOptions{Doc: a.Name, Query: query, Caching: true}, a.Packets)
			if err != nil {
				return err
			}
			fmt.Printf("      prefetched %-14s %d intact of %d received\n", a.Name, got.Intact, got.Received)
		}
	}
	return nil
}
