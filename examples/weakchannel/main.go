// Weakchannel: the full client/server prototype over a loopback TCP
// connection with an emulated lossy wireless hop. The server streams the
// embedded draft manuscript QIC-ordered and erasure-coded; the client
// renders units progressively, stalls, caches intact packets, and
// completes via selective retransmission — the paper's Caching strategy
// live on the wire.
package main

import (
	"fmt"
	"net"
	"os"
	"strings"

	"mobweb"
	"mobweb/internal/corpus"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "weakchannel:", err)
		os.Exit(1)
	}
}

func run() error {
	// Server side: index the embedded corpus, inject 40% corruption —
	// a badly degraded wireless cell.
	engine := mobweb.NewEngine()
	docs, err := corpus.LoadAll()
	if err != nil {
		return err
	}
	for _, d := range docs {
		if err := engine.Add(d); err != nil {
			return err
		}
	}
	injector, err := mobweb.BernoulliInjector(0.4, 2)
	if err != nil {
		return err
	}
	srv, err := mobweb.NewServer(engine, mobweb.ServerOptions{Injector: injector})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		srv.Serve(ln)
	}()
	defer func() {
		srv.Close()
		<-serveDone
	}()
	fmt.Printf("server up on %s with alpha=0.4 wireless emulation\n", ln.Addr())

	// Client side: search, then fetch with caching.
	client, err := mobweb.Dial(ln.Addr().String())
	if err != nil {
		return err
	}
	defer client.Close()

	hits, err := client.Search("mobile web browsing", 5)
	if err != nil {
		return err
	}
	fmt.Println("search results:")
	for i, h := range hits {
		fmt.Printf("  %d. %-20s %.4f  %s\n", i+1, h.Name, h.Score, h.Title)
	}

	rendered := 0
	res, err := client.Fetch(mobweb.FetchOptions{
		Doc:       hits[0].Name,
		Query:     "mobile web browsing",
		Notion:    mobweb.NotionQIC,
		LOD:       mobweb.LODSection,
		Caching:   true,
		MaxRounds: 30,
		OnProgress: func(p mobweb.Progress) {
			for _, u := range p.NewUnits {
				rendered++
				fmt.Printf("  [IC %.3f] rendered unit %-8s %.60q\n",
					p.InfoContent, u.Segment.Label, firstLine(u.Text))
			}
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("\ndone: %d rounds, %d packets received, %d corrupted, stalled=%v\n",
		res.Rounds, res.PacketsReceived, res.PacketsCorrupted, res.Stalled)
	if res.Body == nil {
		return fmt.Errorf("document not reconstructed")
	}
	fmt.Printf("document reconstructed: %d bytes after %d progressive units\n", len(res.Body), rendered)
	return nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
