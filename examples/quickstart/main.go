// Quickstart: parse a structured document, compute its information
// content, build a fault-tolerant multi-resolution transmission plan, run
// it through an in-process lossy channel, and reconstruct — the whole
// pipeline in one file, no network required.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"mobweb"
)

const paper = `<research-paper>
<title>A Tiny Paper on Weakly-Connected Browsing</title>
<abstract>
  <paragraph>Mobile web browsing over weak wireless channels wastes
  bandwidth when documents turn out to be irrelevant. We transmit the
  highest content-bearing units first and protect them with an erasure
  code.</paragraph>
</abstract>
<section><title>Introduction</title>
  <paragraph>Mobile clients browse web documents over channels that
  corrupt packets. Retransmitting whole documents is expensive, so the
  transmission must tolerate faults.</paragraph>
  <paragraph>Multi-resolution transmission ranks organizational units by
  information content so a user judges relevance early.</paragraph>
</section>
<section><title>Encoding</title>
  <paragraph>Raw packets become cooked packets through a systematic
  Vandermonde dispersal matrix; any M intact cooked packets reconstruct
  the document.</paragraph>
</section>
</research-paper>`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Parse and analyze: five-stage pipeline → structural
	// characteristic with per-unit information content.
	doc, err := mobweb.ParseXML([]byte(paper), "tiny.xml")
	if err != nil {
		return err
	}
	an, err := mobweb.Analyze(doc)
	if err != nil {
		return err
	}
	fmt.Printf("parsed %q: %d bytes, %d units, %d paragraphs\n",
		doc.Title, doc.Size(), len(doc.Units()), len(doc.Paragraphs()))

	// 2. Plan: rank paragraphs by query-based information content and
	// expand M raw packets into N cooked ones (γ = 1.5).
	plan, err := an.Plan("mobile web browsing", mobweb.PlanConfig{
		LOD:        mobweb.LODParagraph,
		Notion:     mobweb.NotionQIC,
		PacketSize: 64,
		Gamma:      1.5,
	})
	if err != nil {
		return err
	}
	fmt.Printf("plan: M=%d raw → N=%d cooked packets; transmission order:\n", plan.M(), plan.N())
	for i, seg := range plan.Segments() {
		fmt.Printf("  %d. unit %-6s score %.4f (%d bytes)\n", i+1, seg.Unit.Label, seg.Score, seg.Length)
	}

	// 3. Transmit over a lossy channel: corrupt ~30% of frames; the CRC
	// catches every corruption. A round that ends short of M intact
	// packets is a stall; intact packets stay cached (the paper's
	// Caching strategy) and the next round fills the gaps.
	rcv, err := mobweb.NewReceiver(plan)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(7))
	corrupted, sent := 0, 0
rounds:
	for round := 1; round <= 10; round++ {
		for seq := 0; seq < plan.N(); seq++ {
			if rcv.Held(seq) {
				continue // selective retransmission: skip cached packets
			}
			frame, err := plan.Frame(seq)
			if err != nil {
				return err
			}
			sent++
			if rng.Float64() < 0.3 {
				frame[len(frame)-1] ^= 0xFF // wireless burst
				corrupted++
			}
			if _, intact, err := rcv.AddFrame(frame); err != nil {
				return err
			} else if intact && rcv.Reconstructible() {
				fmt.Printf("reconstructible after %d frames (%d corrupted) in round %d\n",
					sent, corrupted, round)
				break rounds
			}
		}
		fmt.Printf("round %d stalled with %d/%d intact; retransmitting missing packets\n",
			round, rcv.IntactCount(), plan.M())
	}

	// 4. Reconstruct and verify.
	body, err := rcv.Reconstruct()
	if err != nil {
		return fmt.Errorf("still stalled after retransmissions: %w", err)
	}
	fmt.Printf("reconstructed %d bytes, info content %.3f\n", len(body), rcv.InfoContent())

	// 5. Progressive view: what a client could already render from clear
	// text alone, highest content first.
	for _, u := range rcv.Render() {
		fmt.Printf("  unit %-6s %.60q\n", u.Segment.Label, u.Text)
	}
	return nil
}
