// Package mobweb is a Go implementation of fault-tolerant
// multi-resolution transmission (FT-MRT) for browsing web documents over
// weakly-connected mobile channels, reproducing "On Supporting
// Weakly-Connected Browsing in a Mobile Web Environment" (Leong, McLeod,
// Si, Yau — ICDCS 2000).
//
// The library covers the full pipeline of the paper:
//
//   - parsing XML (and heuristically HTML) documents into a tree of
//     organizational units at five levels of detail;
//   - computing information content (IC), query-based information content
//     (QIC) and its modified variant (MQIC) per unit;
//   - ranking and transmitting units highest-content-first, packetized
//     and expanded with a systematic Vandermonde information-dispersal
//     code so that any M of N cooked packets reconstruct the document;
//   - a client receiver with packet caching across retransmission rounds,
//     progressive rendering, and early termination on relevance judgment;
//   - a TCP client/server realizing the paper's prototype architecture,
//     with pluggable wireless fault injection;
//   - the discrete-event simulator that regenerates the paper's
//     evaluation (Figures 2-7, Tables 1-2).
//
// Quick start:
//
//	doc, _ := mobweb.ParseXML(xmlBytes, "paper.xml")
//	an, _ := mobweb.Analyze(doc)
//	plan, _ := an.Plan("mobile web browsing", mobweb.PlanConfig{
//	    LOD:    mobweb.LODParagraph,
//	    Notion: mobweb.NotionQIC,
//	})
//	rcv, _ := mobweb.NewReceiver(plan)
//	for seq := 0; seq < plan.N(); seq++ {
//	    frame, _ := plan.Frame(seq)
//	    rcv.AddFrame(frame) // over any lossy channel
//	}
//	body, _ := rcv.Reconstruct()
package mobweb

import (
	"bytes"
	"fmt"
	"net"
	"net/http"

	"mobweb/internal/baseline"
	"mobweb/internal/channel"
	"mobweb/internal/cluster"
	"mobweb/internal/content"
	"mobweb/internal/core"
	"mobweb/internal/document"
	"mobweb/internal/ewma"
	"mobweb/internal/gateway"
	"mobweb/internal/markup"
	"mobweb/internal/obs"
	"mobweb/internal/planner"
	"mobweb/internal/prefetch"
	"mobweb/internal/profile"
	"mobweb/internal/search"
	"mobweb/internal/session"
	"mobweb/internal/sim"
	"mobweb/internal/store"
	"mobweb/internal/textproc"
	"mobweb/internal/trace"
	"mobweb/internal/transport"
)

// Re-exported model types. The aliases give external users full access to
// the underlying types and their methods.
type (
	// Document is a structured web document: a tree of organizational
	// units with byte extents.
	Document = document.Document
	// Unit is one organizational unit (document, section, subsection,
	// subsubsection or paragraph).
	Unit = document.Unit
	// LOD is a level of detail.
	LOD = document.LOD
	// Notion selects the information-content definition (IC/QIC/MQIC).
	Notion = content.Notion
	// SC is a document's structural characteristic: unit tree plus
	// keyword index and content scores.
	SC = content.SC
	// Plan is an immutable FT-MRT transmission plan.
	Plan = core.Plan
	// PlanConfig parameterizes plan construction.
	PlanConfig = core.Config
	// Layout is a plan's serializable transmission geometry.
	Layout = core.Layout
	// Receiver accumulates cooked packets client-side.
	Receiver = core.Receiver
	// RenderedUnit is a progressively-renderable unit with its text.
	RenderedUnit = core.RenderedUnit
	// Engine is the keyword search engine over a document collection.
	Engine = search.Engine
	// Hit is one search result with its SC and query vector.
	Hit = search.Hit
	// Server streams documents with FT-MRT over TCP.
	Server = transport.Server
	// ServerOptions tunes the server, including its PlannerOptions.
	ServerOptions = transport.ServerOptions
	// Planner is the shared planning service: canonical plan keys, a
	// byte-budgeted LRU plan cache, and singleflight build deduplication.
	Planner = planner.Planner
	// PlannerOptions tunes plan caching and request resolution.
	PlannerOptions = planner.Options
	// PlannerRequest names one plan to resolve in wire spellings.
	PlannerRequest = planner.Request
	// PlannerStats snapshots the planner's cache counters.
	PlannerStats = planner.Stats
	// Client fetches documents over TCP with caching and progressive
	// rendering.
	Client = transport.Client
	// FetchOptions parameterizes a client fetch.
	FetchOptions = transport.FetchOptions
	// FetchResult summarizes a fetch; on terminal errors it is returned
	// partially filled alongside the error.
	FetchResult = transport.FetchResult
	// PrefetchResult reports a prefetch window's received/intact counts.
	PrefetchResult = transport.PrefetchResult
	// RetryPolicy bounds client reconnection (attempts, backoff) after a
	// mid-fetch connection failure.
	RetryPolicy = transport.RetryPolicy
	// Progress reports per-frame download progress.
	Progress = transport.Progress
	// FaultInjector emulates the wireless hop on the live transport.
	FaultInjector = transport.FaultInjector
	// ChaosPolicy schedules deterministic connection kills for
	// disconnection drills.
	ChaosPolicy = transport.ChaosPolicy
	// ChaosListener wraps a listener so accepted connections die on the
	// policy's seeded schedule.
	ChaosListener = transport.ChaosListener
	// Metrics is the observability registry: named atomic counters,
	// gauges and histograms plus scrape-time probes and the fetch log.
	// Wire one into ServerOptions.Metrics, Client.Metrics and
	// Gateway.SetMetrics; a nil registry disables all instrumentation at
	// one branch per event.
	Metrics = obs.Registry
	// MetricsSnapshot is a point-in-time copy of every metric in a
	// registry, as served by /debug/metrics.
	MetricsSnapshot = obs.Snapshot
	// FetchTrace is a bounded per-fetch event timeline; attach one via
	// FetchOptions.Trace.
	FetchTrace = obs.Trace
	// FetchEvent is one entry in a fetch timeline.
	FetchEvent = obs.Event
	// FetchRecord summarizes one fetch in the registry's fetch log, as
	// served by /debug/fetches.
	FetchRecord = obs.FetchRecord
	// Gateway is the HTTP front end of Figure 1's WWW server; SetMetrics
	// mounts the /debug endpoints on it.
	Gateway = gateway.Handler
	// SimParams parameterizes the paper's evaluation model.
	SimParams = sim.Params
	// SimResult aggregates a simulation run.
	SimResult = sim.Result
	// DocSpec describes the synthetic simulation document population.
	DocSpec = trace.DocSpec
	// Profile is an adaptive user-interest vector with relevance
	// feedback (§6's user-profiling extension).
	Profile = profile.Profile
	// ProfileConfig tunes profile adaptation.
	ProfileConfig = profile.Config
	// ProfileFeedback is one browsing outcome folded into a profile.
	ProfileFeedback = profile.Feedback
	// PrefetchCandidate is one prefetchable next document.
	PrefetchCandidate = prefetch.Candidate
	// PrefetchAllocation assigns idle budget to a candidate.
	PrefetchAllocation = prefetch.Allocation
	// PrefetchGate subordinates speculative windows to foreground
	// fetches: every open window's context is canceled the moment a
	// foreground fetch starts.
	PrefetchGate = prefetch.Gate
	// PrefetchScheduler spends idle-link budgets on predicted documents
	// through a transport-shaped fetch function, keeping partial windows
	// on the books across cancellations.
	PrefetchScheduler = prefetch.Scheduler
	// PrefetchTracker carries per-document prefetch progress across
	// scheduler windows.
	PrefetchTracker = prefetch.Tracker
	// PrefetchWindowResult accounts one scheduler window.
	PrefetchWindowResult = prefetch.WindowResult
	// ProfileCandidate is a scored document offered to PredictTopK.
	ProfileCandidate = profile.Candidate
	// ProfilePrediction is one entry of a top-k prefetch shortlist.
	ProfilePrediction = profile.Prediction
	// Store is the crash-safe persistent packet store: cooked packets
	// and decoded generations survive process death, so a restarted
	// client resumes with its Have/DoneGens lists (attach via
	// Client.Store).
	Store = store.Store
	// StoreOptions bounds the store's segment log.
	StoreOptions = store.Options
	// StoreStats snapshots the store's segment, byte and recovery
	// counters.
	StoreStats = store.Stats
	// TransferStrategy is a baseline transfer scheme for comparisons.
	TransferStrategy = baseline.Strategy
	// Cluster groups hierarchically linked pages into the paper's larger
	// browsing unit.
	Cluster = cluster.Cluster
	// PageScore is a page's cluster-level information content.
	PageScore = cluster.PageScore
	// Session orchestrates the full mobile browsing loop: personalized
	// search, skims at the relevance threshold, reads with feedback, and
	// think-time prefetching.
	Session = session.Session
	// SessionOptions tunes the browsing policy.
	SessionOptions = session.Options
	// SessionStats aggregates a session's accounting.
	SessionStats = session.Stats
	// RankedHit is a search hit after personalization.
	RankedHit = session.RankedHit
)

// Levels of detail, coarsest first.
const (
	LODDocument      = document.LODDocument
	LODSection       = document.LODSection
	LODSubsection    = document.LODSubsection
	LODSubsubsection = document.LODSubsubsection
	LODParagraph     = document.LODParagraph
)

// Information-content notions.
const (
	NotionIC   = content.NotionIC
	NotionQIC  = content.NotionQIC
	NotionMQIC = content.NotionMQIC
)

// ParseXML parses an XML document with the default research-paper tag
// mapping.
func ParseXML(data []byte, name string) (*Document, error) {
	return markup.ParseXML(bytes.NewReader(data), name, markup.DefaultTagMap())
}

// ParseHTML extracts structure from an HTML page via heading heuristics.
func ParseHTML(data []byte, name string) (*Document, error) {
	return markup.ParseHTML(bytes.NewReader(data), name)
}

// Analysis bundles a document with its keyword index and structural
// characteristic.
type Analysis struct {
	// Doc is the analyzed document.
	Doc *Document
	// SC is its structural characteristic.
	SC *SC
}

// Analyze runs the five-stage SC-generation pipeline (§3.3) on a
// document.
func Analyze(doc *Document) (*Analysis, error) {
	if doc == nil {
		return nil, fmt.Errorf("mobweb: nil document")
	}
	idx, err := textproc.BuildIndex(doc, textproc.Options{})
	if err != nil {
		return nil, err
	}
	sc, err := content.Build(doc, idx)
	if err != nil {
		return nil, err
	}
	return &Analysis{Doc: doc, SC: sc}, nil
}

// QueryVector converts a free-text query into the occurrence vector used
// by QIC/MQIC ranking.
func QueryVector(query string) map[string]int {
	return textproc.QueryVector(query)
}

// Plan builds an FT-MRT transmission plan, ranking units for the query
// (empty query falls back to static IC ordering).
func (a *Analysis) Plan(query string, cfg PlanConfig) (*Plan, error) {
	var qv map[string]int
	if query != "" {
		qv = textproc.QueryVector(query)
	}
	return core.NewPlan(a.SC, qv, cfg)
}

// NewReceiver returns an empty receiver for a plan.
func NewReceiver(plan *Plan) (*Receiver, error) { return core.NewReceiver(plan) }

// NewReceiverFromLayout builds a receiver from serialized geometry (the
// remote-client path).
func NewReceiverFromLayout(layout Layout) (*Receiver, error) {
	return core.NewReceiverFromLayout(layout)
}

// NewEngine returns an empty search engine.
func NewEngine() *Engine { return search.NewEngine(textproc.Options{}) }

// NewServer wraps an engine as an FT-MRT transmission server.
func NewServer(engine *Engine, opts ServerOptions) (*Server, error) {
	return transport.NewServer(engine, opts)
}

// NewPlanner wraps an engine as a planning service, for sharing one plan
// cache between the TCP server and the HTTP gateway.
func NewPlanner(engine *Engine, opts PlannerOptions) (*Planner, error) {
	return planner.New(engine, opts)
}

// Dial connects a client to a transmission server. The client keeps the
// address for redialing, so fetches survive connection death (tune with
// Client.Retry; disable with NoRetry).
func Dial(addr string) (*Client, error) { return transport.Dial(addr) }

// NoRetry disables client reconnection: the first connection failure is
// terminal.
var NoRetry = transport.NoRetry

// Terminal fetch-failure classes. Fetch returns the partial FetchResult
// alongside these, so callers can still use rendered units, accrued
// information content, and held packets.
var (
	// ErrDisconnected marks a fetch that lost its connection and could
	// not re-establish it.
	ErrDisconnected = transport.ErrDisconnected
	// ErrRoundsExhausted marks a fetch that spent MaxRounds without
	// completing.
	ErrRoundsExhausted = transport.ErrRoundsExhausted
)

// NewChaosListener wraps a listener so accepted connections are killed,
// stalled and truncated mid-frame on a deterministic seeded schedule —
// a drill harness for the reconnect/resume path.
func NewChaosListener(ln net.Listener, policy ChaosPolicy) *ChaosListener {
	return transport.NewChaosListener(ln, policy)
}

// BernoulliInjector returns a fault injector corrupting each frame
// independently with probability alpha — the paper's channel model on the
// live transport.
func BernoulliInjector(alpha float64, seed int64) (FaultInjector, error) {
	model, err := channel.NewBernoulli(alpha, seed)
	if err != nil {
		return nil, err
	}
	return transport.NewModelInjector(model), nil
}

// NewGateway wraps an engine as the HTTP front end of Figure 1's WWW
// server: /search, /sc/{name} and /doc/{name} endpoints that expose
// multi-resolution content to conventional browsers.
func NewGateway(engine *Engine) (*Gateway, error) { return gateway.New(engine) }

// NewGatewayWithPlanner is NewGateway sharing an existing planning
// service (and hence its plan cache) with other front ends.
func NewGatewayWithPlanner(engine *Engine, pl *Planner) (*Gateway, error) {
	return gateway.NewWithPlanner(engine, pl)
}

// NewMetrics returns an empty observability registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewFetchTrace returns a fetch timeline holding up to capacity events
// (non-positive means the default capacity).
func NewFetchTrace(capacity int) *FetchTrace { return obs.NewTrace(capacity) }

// MetricsHandler serves a registry snapshot as JSON — mount it wherever
// the embedding application exposes debug endpoints.
func MetricsHandler(reg *Metrics) http.Handler { return obs.MetricsHandler(reg) }

// FetchesHandler serves the registry's recent fetch records as JSON,
// newest first (?n= caps the count).
func FetchesHandler(reg *Metrics) http.Handler { return obs.FetchesHandler(reg) }

// NewCluster starts an empty page cluster rooted at rootName.
func NewCluster(name, rootName string) (*Cluster, error) { return cluster.New(name, rootName) }

// NewSession starts a browsing session over a connected client; the
// profile may be nil to disable personalization.
func NewSession(client *Client, prof *Profile, opts SessionOptions) (*Session, error) {
	return session.New(client, prof, opts)
}

// NewProfile returns an empty user-interest profile.
func NewProfile(cfg ProfileConfig) (*Profile, error) { return profile.New(cfg) }

// PlanPrefetch splits an idle-window packet budget across candidate next
// documents, most likely first (§6's intelligent prefetching).
func PlanPrefetch(candidates []PrefetchCandidate, budgetPackets int) ([]PrefetchAllocation, error) {
	return prefetch.Plan(candidates, budgetPackets)
}

// PrefetchBudget converts idle time into a packet budget.
func PrefetchBudget(idleSeconds, bandwidthBPS float64, frameBytes int) int {
	return prefetch.Budget(idleSeconds, bandwidthBPS, frameBytes)
}

// PredictTopK ranks scored candidates into a deterministic top-k
// prefetch shortlist: descending score, ties broken by name, duplicates
// collapsed to their best score.
func PredictTopK(cands []ProfileCandidate, k int) []ProfilePrediction {
	return profile.PredictTopK(cands, k)
}

// OpenStore opens (or recovers) a persistent packet store rooted at dir.
// Attach it via Client.Store; a caching fetch then seeds from it before
// touching the wire and drains back to it after every round.
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	return store.Open(dir, opts)
}

// AlphaEstimator tracks the observed channel failure probability with an
// exponentially-weighted moving average, for adapting the redundancy
// ratio to channel conditions (§4.2).
type AlphaEstimator = ewma.Estimator

// NewAlphaEstimator returns an estimator with smoothing weight w in
// (0, 1].
func NewAlphaEstimator(w float64) (*AlphaEstimator, error) { return ewma.New(w) }

// DefaultSimParams returns Table 2's simulation settings.
func DefaultSimParams() SimParams { return sim.DefaultParams() }

// Simulate runs the paper's evaluation model.
func Simulate(p SimParams) (SimResult, error) { return sim.Run(p) }

// SimImprovement returns the response-time improvement of the given LOD
// over document-LOD transmission (Figures 6-7).
func SimImprovement(p SimParams, lod LOD) (float64, error) {
	return sim.Improvement(p, lod)
}

// ChooseCooked picks the optimal cooked-packet count N for M raw packets
// given an estimated failure probability and target success probability
// (Figure 2's analysis).
func ChooseCooked(m int, alpha, successProb float64) (int, error) {
	return core.ChooseCooked(m, alpha, successProb)
}

// GammaFor returns the optimal redundancy ratio γ = N/M (Figure 3).
func GammaFor(m int, alpha, successProb float64) (float64, error) {
	return core.GammaFor(m, alpha, successProb)
}
