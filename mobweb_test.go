package mobweb

import (
	"bytes"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mobweb/internal/corpus"
	"mobweb/internal/transport"
)

const sampleXML = `<research-paper>
<title>Sample</title>
<abstract><paragraph>Mobile web browsing over weak wireless channels.</paragraph></abstract>
<section><title>Body</title>
<paragraph>Erasure coding recovers corrupted packets without full retransmission.</paragraph>
<paragraph>Mobile clients cache intact packets across rounds.</paragraph>
</section>
</research-paper>`

func TestParseAnalyzePlanReceive(t *testing.T) {
	doc, err := ParseXML([]byte(sampleXML), "sample.xml")
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(doc)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := an.Plan("mobile web browsing", PlanConfig{
		LOD:        LODParagraph,
		Notion:     NotionQIC,
		PacketSize: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := NewReceiver(plan)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 0; seq < plan.N(); seq++ {
		frame, err := plan.Frame(seq)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := rcv.AddFrame(frame); err != nil {
			t.Fatal(err)
		}
	}
	body, err := rcv.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, doc.Body()) {
		t.Error("public API round trip lost document bytes")
	}
}

func TestAnalyzeNil(t *testing.T) {
	if _, err := Analyze(nil); err == nil {
		t.Error("nil document accepted")
	}
}

func TestParseHTMLPublic(t *testing.T) {
	html := []byte(`<html><body><h1>T</h1><p>mobile paragraph text</p></body></html>`)
	doc, err := ParseHTML(html, "t.html")
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Paragraphs()) == 0 {
		t.Error("no paragraphs extracted")
	}
}

func TestSimulatePublic(t *testing.T) {
	p := DefaultSimParams()
	p.Documents = 5
	p.Repetitions = 1
	res, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanResponseTime <= 0 {
		t.Errorf("mean response time %v, want > 0", res.MeanResponseTime)
	}
}

func TestChooseCookedPublic(t *testing.T) {
	n, err := ChooseCooked(40, 0.1, 0.95)
	if err != nil || n < 40 {
		t.Errorf("ChooseCooked = (%d, %v)", n, err)
	}
	g, err := GammaFor(40, 0.3, 0.99)
	if err != nil || g < 1 {
		t.Errorf("GammaFor = (%v, %v)", g, err)
	}
}

func TestEndToEndServerClient(t *testing.T) {
	engine := NewEngine()
	docs, err := corpus.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		if err := engine.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	injector, err := BernoulliInjector(0.2, 99)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(engine, ServerOptions{Injector: injector})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	defer func() {
		srv.Close()
		<-done
	}()

	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.Timeout = 10 * time.Second

	hits, err := client.Search("mobile browsing", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no search hits")
	}
	res, err := client.Fetch(FetchOptions{
		Doc:       hits[0].Name,
		Query:     "mobile browsing",
		Notion:    NotionQIC,
		LOD:       LODParagraph,
		Caching:   true,
		MaxRounds: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Body == nil {
		t.Fatal("fetch over lossy channel did not complete")
	}
}

func TestSessionFacade(t *testing.T) {
	engine := NewEngine()
	docs, err := corpus.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		if err := engine.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := NewServer(engine, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	defer func() {
		srv.Close()
		<-done
	}()
	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	prof, err := NewProfile(ProfileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(client, prof, SessionOptions{ProfileBlend: 0.5, ThinkTime: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	hits, err := sess.Search("mobile web browsing", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	skim, err := sess.Skim(hits[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(skim.Rendered) == 0 {
		t.Error("skim rendered nothing")
	}
	read, err := sess.Read(hits[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if read.Body == nil {
		t.Fatal("read incomplete")
	}
	if sess.Stats().Reads != 1 {
		t.Errorf("stats %+v", sess.Stats())
	}
}

func TestGatewayFacade(t *testing.T) {
	engine := NewEngine()
	docs, err := corpus.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		if err := engine.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	gw, err := NewGateway(engine)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(gw)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/search?q=mobile")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d", resp.StatusCode)
	}
}

// Compile-time checks that the aliases expose the intended interfaces.
var (
	_ FaultInjector = transport.NopInjector{}
)
