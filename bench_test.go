package mobweb

// One benchmark per table and figure of the paper (see DESIGN.md §4),
// plus ablation benches for the design choices DESIGN.md §5 calls out.
// The figure benches run the same code paths as cmd/mrtfigures at a
// reduced simulation scale and surface a headline number from each
// artifact through b.ReportMetric, so `go test -bench=.` doubles as a
// sanity dashboard for the reproduction.

import (
	"math/rand"
	"strconv"
	"testing"

	"mobweb/internal/content"
	"mobweb/internal/core"
	"mobweb/internal/corpus"
	"mobweb/internal/document"
	"mobweb/internal/erasure"
	"mobweb/internal/figures"
	"mobweb/internal/nbinom"
	"mobweb/internal/planner"
	"mobweb/internal/search"
	"mobweb/internal/sim"
	"mobweb/internal/textproc"
)

// benchScale keeps figure regeneration fast enough for -bench runs while
// preserving every qualitative shape.
func benchScale() figures.SimScale {
	return figures.SimScale{Documents: 20, Repetitions: 2, Seed: 1}
}

// BenchmarkTable1SCGeneration regenerates Table 1: the draft manuscript's
// per-unit IC/QIC/MQIC.
func BenchmarkTable1SCGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := figures.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("empty Table 1")
		}
	}
}

// BenchmarkTable2DefaultSession runs one browsing session at exactly
// Table 2's default parameters and reports its mean response time.
func BenchmarkTable2DefaultSession(b *testing.B) {
	p := sim.DefaultParams()
	p.Documents = 20
	p.Repetitions = 1
	var last sim.Result
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.MeanResponseTime, "respTime-s")
}

// BenchmarkFigure2MinCooked solves the negative-binomial tail inequality
// across Figure 2's full (M, α, S) grid.
func BenchmarkFigure2MinCooked(b *testing.B) {
	var n60 int
	for i := 0; i < b.N; i++ {
		for _, s := range []float64{0.95, 0.99} {
			fig, err := figures.Figure2(s)
			if err != nil {
				b.Fatal(err)
			}
			if s == 0.95 {
				n60 = int(fig.Series[0].Y[3]) // α=0.1, M=40
			}
		}
	}
	b.ReportMetric(float64(n60), "N(M=40,α=0.1,S=95%)")
}

// BenchmarkFigure3RedundancyRatio computes Figure 3's γ-versus-α curves.
func BenchmarkFigure3RedundancyRatio(b *testing.B) {
	var gamma float64
	for i := 0; i < b.N; i++ {
		fig, err := figures.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		gamma = fig.Series[0].Y[2] // S=95%, M=50, α=0.3
	}
	b.ReportMetric(gamma, "γ(α=0.3,S=95%)")
}

// BenchmarkFigure4CachingVsNoCaching regenerates Figure 4's four panels
// and reports the caching speedup at α=0.4, γ=1.5.
func BenchmarkFigure4CachingVsNoCaching(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		figs, err := figures.Figure4(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		noCache := figs[0].Series[3] // α=0.4
		withCache := figs[1].Series[3]
		speedup = noCache.Y[2] / withCache.Y[2] // γ=1.5
	}
	b.ReportMetric(speedup, "caching-speedup(α=0.4,γ=1.5)")
}

// BenchmarkFigure5VaryIF regenerates Figure 5 and reports the F=0.5 vs
// F=0.1 response ratio under caching at α=0.1.
func BenchmarkFigure5VaryIF(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		figs, err := figures.Figure5(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		s := figs[3].Series[0] // Caching, varying F, α=0.1
		ratio = s.Y[5] / s.Y[1]
	}
	b.ReportMetric(ratio, "respTime(F=0.5)/respTime(F=0.1)")
}

// BenchmarkFigure6LODImprovement regenerates Figure 6 and reports the
// paragraph-LOD improvement at F=0.2, α=0.1.
func BenchmarkFigure6LODImprovement(b *testing.B) {
	var improvement float64
	for i := 0; i < b.N; i++ {
		figs, err := figures.Figure6(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range figs[0].Series {
			if s.Label == "paragraph" {
				improvement = s.Y[1]
			}
		}
	}
	b.ReportMetric(improvement, "paragraph-improvement(F=0.2)")
}

// BenchmarkFigure7SkewImpact regenerates Figure 7 and reports the gain in
// peak paragraph improvement from δ=2 to δ=5.
func BenchmarkFigure7SkewImpact(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		figs, err := figures.Figure7(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		peak := func(f figures.Figure) float64 {
			best := 0.0
			for _, s := range f.Series {
				if s.Label != "paragraph" {
					continue
				}
				for _, y := range s.Y {
					if y > best {
						best = y
					}
				}
			}
			return best
		}
		gain = peak(figs[3]) - peak(figs[0])
	}
	b.ReportMetric(gain, "peak-improvement(δ=5)-(δ=2)")
}

// BenchmarkAblationSystematic contrasts decode cost with and without the
// clear-text prefix: decoding from the systematic prefix is a copy, while
// decoding from redundancy packets requires a matrix inversion — the
// "saving recovering effort" the Vandermonde modification buys (§4.1).
func BenchmarkAblationSystematic(b *testing.B) {
	coder, err := erasure.NewCoder(40, 80)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	raw := make([][]byte, 40)
	for i := range raw {
		raw[i] = make([]byte, 256)
		rng.Read(raw[i])
	}
	cooked, err := coder.Encode(raw)
	if err != nil {
		b.Fatal(err)
	}
	clear := make([]erasure.Received, 40)
	redundant := make([]erasure.Received, 40)
	for i := 0; i < 40; i++ {
		clear[i] = erasure.Received{Index: i, Data: cooked[i]}
		redundant[i] = erasure.Received{Index: 40 + i, Data: cooked[40+i]}
	}
	b.Run("clear-prefix", func(b *testing.B) {
		b.SetBytes(40 * 256)
		for i := 0; i < b.N; i++ {
			if _, err := coder.Decode(clear); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("redundancy-only", func(b *testing.B) {
		b.SetBytes(40 * 256)
		for i := 0; i < b.N; i++ {
			if _, err := coder.Decode(redundant); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationContentNotions contrasts the three ranking notions on
// the draft manuscript: plan-building cost per notion, plus how much of
// the query-relevant (QIC) mass each ordering packs into the first
// quarter of the stream — the quantity that drives early relevance
// judgment.
func BenchmarkAblationContentNotions(b *testing.B) {
	doc, err := corpus.Load(corpus.DraftName)
	if err != nil {
		b.Fatal(err)
	}
	idx, err := textproc.BuildIndex(doc, textproc.Options{})
	if err != nil {
		b.Fatal(err)
	}
	sc, err := content.Build(doc, idx)
	if err != nil {
		b.Fatal(err)
	}
	q := textproc.QueryVector("browsing mobile web")
	qicScores := sc.Evaluate(q)

	for _, notion := range []content.Notion{content.NotionIC, content.NotionQIC, content.NotionMQIC} {
		b.Run(notion.String(), func(b *testing.B) {
			var plan *core.Plan
			for i := 0; i < b.N; i++ {
				var err error
				plan, err = core.NewPlan(sc, q, core.Config{
					LOD:    document.LODParagraph,
					Notion: notion,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			// QIC mass within the first quarter of the permuted stream.
			quarter := plan.BodySize() / 4
			mass, total := 0.0, 0.0
			for _, seg := range plan.Segments() {
				score := qicScores.QIC[seg.Unit.ID]
				total += score
				if seg.PermutedOff+seg.Length <= quarter {
					mass += score
				}
			}
			if total > 0 {
				b.ReportMetric(mass/total, "qicMassInFirstQuarter")
			}
		})
	}
}

// BenchmarkAblationNorm contrasts the paper's infinity-norm keyword
// weights with the L2 alternative: throughput plus the weight level of
// the most frequent keyword (1.0 under the infinity norm by
// construction).
func BenchmarkAblationNorm(b *testing.B) {
	doc, err := corpus.Load(corpus.DraftName)
	if err != nil {
		b.Fatal(err)
	}
	idx, err := textproc.BuildIndex(doc, textproc.Options{})
	if err != nil {
		b.Fatal(err)
	}
	minWeight := func(w map[string]float64) float64 {
		first := true
		m := 0.0
		for _, v := range w {
			if first || v < m {
				m = v
				first = false
			}
		}
		return m
	}
	b.Run("infinity", func(b *testing.B) {
		var w map[string]float64
		for i := 0; i < b.N; i++ {
			w = content.Weights(idx.Doc)
		}
		b.ReportMetric(minWeight(w), "minWeight")
	})
	b.Run("l2", func(b *testing.B) {
		var w map[string]float64
		for i := 0; i < b.N; i++ {
			w = content.WeightsL2(idx.Doc)
		}
		b.ReportMetric(minWeight(w), "minWeight")
	})
}

// BenchmarkAblationAdaptiveGamma contrasts a fixed redundancy ratio with
// the EWMA-adaptive policy of §4.2 under a drifting channel, reporting
// stalled rounds per 100 documents.
func BenchmarkAblationAdaptiveGamma(b *testing.B) {
	phases := []struct {
		alpha float64
		docs  int
	}{
		{0.05, 34}, {0.45, 33}, {0.10, 33},
	}
	const m = 40
	runPolicy := func(adaptive bool, seed int64) (stalls int) {
		rng := rand.New(rand.NewSource(seed))
		est, err := NewAlphaEstimator(0.25)
		if err != nil {
			b.Fatal(err)
		}
		chooseN := func() int {
			if !adaptive {
				return m * 3 / 2
			}
			alphaHat := est.ValueOr(0.1)
			if alphaHat > 0.9 {
				alphaHat = 0.9
			}
			n, err := nbinom.MinCooked(m, alphaHat, 0.95)
			if err != nil || n < m {
				return m * 3 / 2
			}
			return n
		}
		for _, ph := range phases {
			for d := 0; d < ph.docs; d++ {
				for {
					n := chooseN()
					intact, corrupted := 0, 0
					for i := 0; i < n; i++ {
						if rng.Float64() < ph.alpha {
							corrupted++
						} else {
							intact++
						}
					}
					est.ObserveWindow(corrupted, n)
					if intact >= m {
						break
					}
					stalls++
				}
			}
		}
		return stalls
	}
	b.Run("fixed", func(b *testing.B) {
		var stalls int
		for i := 0; i < b.N; i++ {
			stalls = runPolicy(false, int64(i))
		}
		b.ReportMetric(float64(stalls), "stalls/100docs")
	})
	b.Run("adaptive", func(b *testing.B) {
		var stalls int
		for i := 0; i < b.N; i++ {
			stalls = runPolicy(true, int64(i))
		}
		b.ReportMetric(float64(stalls), "stalls/100docs")
	})
}

// BenchmarkExtBaselineComparison runs the transfer-scheme comparison
// (extension experiment) and reports FT-MRT's speedup over the
// conventional sequential reload at α=0.3.
func BenchmarkExtBaselineComparison(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		tab, err := figures.ExtBaseline(5, 1)
		if err != nil {
			b.Fatal(err)
		}
		var seq, mrt float64
		for _, row := range tab.Rows {
			if row[1] != "0.3" {
				continue
			}
			v, err := strconv.ParseFloat(row[2], 64)
			if err != nil {
				b.Fatal(err)
			}
			switch row[0] {
			case "sequential-reload":
				seq = v
			case "ft-mrt":
				mrt = v
			}
		}
		speedup = seq / mrt
	}
	b.ReportMetric(speedup, "ftmrt-vs-sequential(α=0.3)")
}

// BenchmarkExtPrefetch runs the idle-time prefetching experiment and
// reports the response-time speedup at α=0.1.
func BenchmarkExtPrefetch(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		tab, err := figures.ExtPrefetch(figures.SimScale{Documents: 15, Repetitions: 1, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		off, err := strconv.ParseFloat(tab.Rows[0][1], 64)
		if err != nil {
			b.Fatal(err)
		}
		on, err := strconv.ParseFloat(tab.Rows[0][2], 64)
		if err != nil {
			b.Fatal(err)
		}
		speedup = off / on
	}
	b.ReportMetric(speedup, "prefetch-speedup(α=0.1)")
}

// BenchmarkExtBurst runs the Gilbert-Elliott extension and reports the
// bursty-over-iid response ratio for Caching at long-run α=0.3.
func BenchmarkExtBurst(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		tab, err := figures.ExtBurst(figures.SimScale{Documents: 15, Repetitions: 1, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		// Row 3: α=0.3, Caching.
		iid, err := strconv.ParseFloat(tab.Rows[3][2], 64)
		if err != nil {
			b.Fatal(err)
		}
		burst, err := strconv.ParseFloat(tab.Rows[3][3], 64)
		if err != nil {
			b.Fatal(err)
		}
		ratio = burst / iid
	}
	b.ReportMetric(ratio, "burst-vs-iid(Caching,α=0.3)")
}

// BenchmarkFetchCachedVsUncached measures the server-side cost of a
// second-round retransmission fetch — resolve the (doc, query, LOD,
// notion, γ) tuple again and frame the packets the client is missing —
// with and without the planner's plan cache. Uncached, every round pays
// for ranking, permutation and packetization again; cached, the round is
// a map lookup plus framing, and (with lazy parity already materialized
// by round one) zero GF(2^8) work.
func BenchmarkFetchCachedVsUncached(b *testing.B) {
	doc, err := corpus.Load(corpus.DraftName)
	if err != nil {
		b.Fatal(err)
	}
	engine := search.NewEngine(textproc.Options{})
	if err := engine.Add(doc); err != nil {
		b.Fatal(err)
	}
	req := planner.Request{
		Doc:    corpus.DraftName,
		Query:  "mobile web browsing",
		LOD:    "paragraph",
		Notion: "QIC",
	}
	// The retransmission round resends every third packet (the client
	// reports the rest as held), mixing clear-text and parity frames.
	round := func(b *testing.B, pl *planner.Planner) {
		plan, err := pl.Resolve(req)
		if err != nil {
			b.Fatal(err)
		}
		for seq := 0; seq < plan.N(); seq += 3 {
			if _, err := plan.Frame(seq); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("uncached", func(b *testing.B) {
		pl, err := planner.New(engine, planner.Options{CacheBytes: -1})
		if err != nil {
			b.Fatal(err)
		}
		round(b, pl) // first round: the fetch being retransmitted
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			round(b, pl)
		}
	})
	b.Run("cached", func(b *testing.B) {
		pl, err := planner.New(engine, planner.Options{})
		if err != nil {
			b.Fatal(err)
		}
		round(b, pl)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			round(b, pl)
		}
		b.StopTimer()
		if st := pl.Stats(); st.Builds != 1 {
			b.Fatalf("cached rounds rebuilt the plan: %+v", st)
		}
	})
}

// BenchmarkLiveFetch measures a full in-process public-API round trip:
// parse → analyze → plan → frame-by-frame receive → reconstruct.
func BenchmarkLiveFetch(b *testing.B) {
	doc, err := corpus.Load(corpus.DraftName)
	if err != nil {
		b.Fatal(err)
	}
	an, err := Analyze(doc)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := an.Plan("mobile web browsing", PlanConfig{LOD: LODParagraph, Notion: NotionQIC})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(doc.Size()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rcv, err := NewReceiver(plan)
		if err != nil {
			b.Fatal(err)
		}
		for seq := 0; seq < plan.N(); seq++ {
			frame, err := plan.Frame(seq)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := rcv.AddFrame(frame); err != nil {
				b.Fatal(err)
			}
			if rcv.Reconstructible() {
				break
			}
		}
		if _, err := rcv.Reconstruct(); err != nil {
			b.Fatal(err)
		}
	}
}
